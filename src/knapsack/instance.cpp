#include "knapsack/instance.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace lcaknap::knapsack {

Instance::Instance(std::vector<Item> items, std::int64_t capacity)
    : items_(std::move(items)), capacity_(capacity) {
  if (items_.empty()) throw std::invalid_argument("Instance: no items");
  if (capacity_ < 0) throw std::invalid_argument("Instance: negative capacity");
  for (const auto& it : items_) {
    if (it.profit < 0) throw std::invalid_argument("Instance: negative profit");
    if (it.weight < 0) throw std::invalid_argument("Instance: negative weight");
    if (it.weight > capacity_) {
      throw std::invalid_argument(
          "Instance: item weight exceeds capacity (Definition 2.2 requires w_i <= K)");
    }
    total_profit_ += it.profit;
    total_weight_ += it.weight;
  }
  if (total_profit_ <= 0) {
    throw std::invalid_argument("Instance: total profit must be positive");
  }
  // All-zero weights are legal (Theorem 3.4's hard family is mostly weight
  // zero); normalize by 1 in that degenerate case so views stay finite.
  if (total_weight_ == 0) total_weight_ = 1;
}

double Instance::efficiency(std::size_t i) const {
  const Item& it = item(i);
  if (it.weight == 0) return std::numeric_limits<double>::infinity();
  return norm_profit(i) / norm_weight(i);
}

std::int64_t Instance::value_of(std::span<const std::size_t> selection) const {
  std::int64_t total = 0;
  for (const auto i : selection) total += item(i).profit;
  return total;
}

std::int64_t Instance::weight_of(std::span<const std::size_t> selection) const {
  std::int64_t total = 0;
  for (const auto i : selection) total += item(i).weight;
  return total;
}

bool Instance::feasible(std::span<const std::size_t> selection) const {
  return weight_of(selection) <= capacity_;
}

Solution Instance::make_solution(std::vector<std::size_t> selection) const {
  Solution sol;
  sol.value = value_of(selection);
  sol.weight = weight_of(selection);
  sol.items = std::move(selection);
  return sol;
}

bool Instance::is_maximal(std::span<const std::size_t> selection) const {
  if (!feasible(selection)) return false;
  const std::int64_t slack = capacity_ - weight_of(selection);
  std::vector<bool> chosen(size(), false);
  for (const auto i : selection) chosen[i] = true;
  for (std::size_t i = 0; i < size(); ++i) {
    if (!chosen[i] && item(i).weight <= slack) return false;
  }
  return true;
}

void Instance::save(std::ostream& os) const {
  os << items_.size() << " " << capacity_ << "\n";
  for (const auto& it : items_) os << it.profit << " " << it.weight << "\n";
}

Instance Instance::load(std::istream& is) {
  std::size_t n = 0;
  std::int64_t capacity = 0;
  if (!(is >> n >> capacity)) {
    throw std::runtime_error("Instance::load: malformed header");
  }
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Item it;
    if (!(is >> it.profit >> it.weight)) {
      throw std::runtime_error("Instance::load: truncated item list");
    }
    items.push_back(it);
  }
  return {std::move(items), capacity};
}

}  // namespace lcaknap::knapsack
