#ifndef LCAKNAP_KNAPSACK_GENERATORS_H
#define LCAKNAP_KNAPSACK_GENERATORS_H

#include <cstdint>
#include <string>
#include <vector>

#include "knapsack/instance.h"
#include "util/rng.h"

/// \file generators.h
/// Workload generators.  The classic correlated/uncorrelated families follow
/// Pisinger's hard-instance taxonomy; the `needle` family realises the
/// "needle in a haystack" phenomenon the paper identifies as the crux of its
/// impossibility results (Section 4, first paragraph): a handful of
/// high-profit items hidden among a sea of garbage.

namespace lcaknap::knapsack {

struct GeneratorConfig {
  std::size_t n = 1000;            ///< number of items
  std::int64_t max_value = 10'000; ///< raw profit/weight magnitude bound
  /// Capacity as a fraction of the total weight (the usual benchmark choice).
  double capacity_fraction = 0.5;
};

/// Profits and weights drawn independently and uniformly from [1, max_value].
[[nodiscard]] Instance uncorrelated(const GeneratorConfig& cfg, util::Xoshiro256& rng);

/// Weights uniform; profit = weight + uniform noise in [-r, r], r = max_value/10
/// (clamped to >= 1).  Moderately hard for branch & bound.
[[nodiscard]] Instance weakly_correlated(const GeneratorConfig& cfg, util::Xoshiro256& rng);

/// Weights uniform; profit = weight + max_value/10.  The classic hard family.
[[nodiscard]] Instance strongly_correlated(const GeneratorConfig& cfg, util::Xoshiro256& rng);

/// Profits uniform; weight = profit + max_value/10 (inverse strong correlation).
[[nodiscard]] Instance inverse_correlated(const GeneratorConfig& cfg, util::Xoshiro256& rng);

/// profit == weight (subset-sum family).
[[nodiscard]] Instance subset_sum(const GeneratorConfig& cfg, util::Xoshiro256& rng);

/// Weights concentrated in [max_value/2, max_value/2 + max_value/100];
/// profits uniform.  Ties in efficiency stress the greedy cut-off logic.
[[nodiscard]] Instance similar_weights(const GeneratorConfig& cfg, util::Xoshiro256& rng);

/// Weights uniform; profit = 3 * ceil(w / 3) (Pisinger's "profit ceiling"
/// class): many items share identical profits, stressing tie handling in
/// profit-indexed machinery.
[[nodiscard]] Instance profit_ceiling(const GeneratorConfig& cfg, util::Xoshiro256& rng);

/// Weights uniform; profits on a circular arc over the weight range
/// (Pisinger's "circle" class): a strongly non-linear profit/weight frontier
/// where greedy's efficiency ordering is least informative.
[[nodiscard]] Instance circle(const GeneratorConfig& cfg, util::Xoshiro256& rng);

/// "Needle" family: `heavy_count` items carry roughly `heavy_mass` of the
/// total profit (these are the paper's large items L(I)); the remaining items
/// split into efficient small items and true garbage (low profit AND low
/// efficiency).  This family exercises all three classes of the Section 4
/// partition at once.
struct NeedleConfig {
  std::size_t n = 10'000;
  std::size_t heavy_count = 5;
  double heavy_mass = 0.4;   ///< fraction of total profit on heavy items
  double garbage_mass = 0.1; ///< fraction of total profit on garbage items
  double capacity_fraction = 0.3;
};
[[nodiscard]] Instance needle(const NeedleConfig& cfg, util::Xoshiro256& rng);

/// Enumerable family tags used by parameterized tests and benches.
enum class Family {
  kUncorrelated,
  kWeaklyCorrelated,
  kStronglyCorrelated,
  kInverseCorrelated,
  kSubsetSum,
  kSimilarWeights,
  kProfitCeiling,
  kCircle,
  kNeedle,
};

[[nodiscard]] std::string family_name(Family family);
[[nodiscard]] std::vector<Family> all_families();

/// Generates an instance of the given family with `n` items from `seed`.
[[nodiscard]] Instance make_family(Family family, std::size_t n, std::uint64_t seed);

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_GENERATORS_H
