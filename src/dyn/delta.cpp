#include "dyn/delta.h"

#include <stdexcept>

#include "iky/construct.h"

namespace lcaknap::dyn {

DeltaPlan plan_delta(const knapsack::Instance& base, const UpdateBatch& batch) {
  for (const auto& m : batch.mutations) {
    switch (m.kind) {
      case MutationKind::kInsert:
        return {false, "insert changes n and the profit vector"};
      case MutationKind::kDelete:
        return {false, "delete tombstones a profit"};
      case MutationKind::kProfitUpdate:
        if (m.index >= base.size()) {
          return {false, "profit update index out of range"};
        }
        if (base.item(m.index).profit != m.profit) {
          return {false, "profit update re-weights the sampling distribution"};
        }
        break;  // writes the value already present: a no-op for sampling
      case MutationKind::kWeightUpdate:
        if (m.index >= base.size()) {
          return {false, "weight update index out of range"};
        }
        break;  // sampling is profit-proportional; weights never matter
    }
  }
  return {true, batch.mutations.empty() ? "empty-batch" : "weight-only"};
}

core::LcaKpRun replay_delta(const core::LcaKp& lca,
                            const core::WarmupTrace& trace) {
  const auto& access = lca.access();
  const double eps = lca.config().eps;
  const double eps2 = eps * eps;

  // Step-1 replay: the traced large set, re-read through the new instance.
  // Mass accumulates in sorted index order, matching run_warmup's
  // extract_large, so the double sum is bit-identical.
  std::vector<iky::NormLargeItem> large;
  large.reserve(trace.large_drawn.size());
  double large_mass = 0.0;
  for (const auto index : trace.large_drawn) {
    const knapsack::Item item = access.query(index);
    const double p = access.norm_profit(item);
    if (!(p > eps2)) {
      throw std::runtime_error(
          "replay_delta: traced-large index " + std::to_string(index) +
          " no longer classifies large (profit vector changed?)");
    }
    iky::NormLargeItem rec;
    rec.index = index;
    rec.profit = p;
    rec.weight = access.norm_weight(item);
    rec.efficiency = access.efficiency(item);
    large.push_back(rec);
    large_mass += p;
  }

  // Step-2 replay: the gate must resolve as it did at trace time (it is a
  // pure function of large_mass, which only depends on profits).
  const bool sweep = 1.0 - large_mass >= eps;
  if (sweep != trace.quantile_swept) {
    throw std::runtime_error(
        "replay_delta: small-mass gate flipped across the epoch");
  }
  // The trace already aggregates draws per index; map each cell to its new
  // grid efficiency and hand the (value, count) cells straight to the
  // histogram ECDF.  Never expanding back into per-observation entries keeps
  // the replay O(distinct traced indices + domain), not O(samples) — the
  // whole point of the delta path.
  std::vector<util::WeightedValue> efficiencies;
  if (sweep) {
    efficiencies.reserve(trace.quantile_draws.size());
    for (const auto& [index, count] : trace.quantile_draws) {
      const knapsack::Item item = access.query(index);
      if (access.norm_profit(item) > eps2) {
        throw std::runtime_error(
            "replay_delta: traced-small index " + std::to_string(index) +
            " no longer passes the line-7 filter");
      }
      const std::int64_t grid = lca.domain().to_grid(access.efficiency(item));
      efficiencies.push_back(
          util::WeightedValue{grid, static_cast<std::size_t>(count)});
    }
  }
  return lca.complete_run_from_sweeps(large, large_mass,
                                      std::span<const util::WeightedValue>(
                                          efficiencies));
}

}  // namespace lcaknap::dyn
