#include "dyn/update.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "store/snapshot.h"

namespace lcaknap::dyn {

namespace {

/// One whitespace-delimited token with its 1-based start column.
struct Token {
  std::string text;
  std::size_t column = 0;
};

std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> tokens;
  std::size_t at = 0;
  while (at < line.size()) {
    while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
    if (at >= line.size()) break;
    const std::size_t start = at;
    while (at < line.size() && line[at] != ' ' && line[at] != '\t') ++at;
    tokens.push_back({std::string(line.substr(start, at - start)), start + 1});
  }
  return tokens;
}

template <typename Int>
Int parse_int(const Token& token, std::size_t line, const char* what) {
  Int value{};
  const char* first = token.text.data();
  const char* last = first + token.text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw EpochLogParseError(std::string("expected ") + what, line,
                             token.column, token.text);
  }
  return value;
}

std::string crc_hex(std::uint64_t crc) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(crc));
  return std::string(buf);
}

}  // namespace

const char* mutation_kind_name(MutationKind kind) noexcept {
  switch (kind) {
    case MutationKind::kInsert: return "insert";
    case MutationKind::kDelete: return "delete";
    case MutationKind::kProfitUpdate: return "profit";
    case MutationKind::kWeightUpdate: return "weight";
  }
  return "unknown";
}

std::string serialize_batch(const UpdateBatch& batch) {
  std::ostringstream os;
  os << "epoch " << batch.epoch_id << "\n";
  for (const auto& m : batch.mutations) {
    switch (m.kind) {
      case MutationKind::kInsert:
        os << "insert " << m.profit << " " << m.weight << "\n";
        break;
      case MutationKind::kDelete:
        os << "delete " << m.index << "\n";
        break;
      case MutationKind::kProfitUpdate:
        os << "profit " << m.index << " " << m.profit << "\n";
        break;
      case MutationKind::kWeightUpdate:
        os << "weight " << m.index << " " << m.weight << "\n";
        break;
    }
  }
  return std::move(os).str();
}

std::uint64_t batch_crc(const UpdateBatch& batch) {
  return store::crc64(serialize_batch(batch));
}

std::string serialize_epoch_log(std::span<const UpdateBatch> batches) {
  std::string out;
  for (const auto& batch : batches) {
    out += serialize_batch(batch);
    out += "seal " + crc_hex(batch_crc(batch)) + "\n";
  }
  return out;
}

std::vector<UpdateBatch> parse_epoch_log(std::string_view text) {
  std::vector<UpdateBatch> batches;
  UpdateBatch open;          // the batch being accumulated, valid iff in_batch
  bool in_batch = false;
  bool have_previous = false;
  std::uint64_t previous_epoch = 0;
  std::size_t line_no = 0;
  std::size_t at = 0;
  std::size_t last_line_no = 1;
  while (at <= text.size()) {
    const std::size_t eol = text.find('\n', at);
    const std::string_view line =
        text.substr(at, eol == std::string_view::npos ? text.size() - at
                                                      : eol - at);
    ++line_no;
    last_line_no = line_no;
    at = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens.front().text.front() == '#') continue;
    const Token& head = tokens.front();

    if (head.text == "epoch") {
      if (in_batch) {
        throw EpochLogParseError("unsealed batch before new epoch", line_no,
                                 head.column, head.text);
      }
      if (tokens.size() != 2) {
        throw EpochLogParseError("epoch takes exactly one id", line_no,
                                 head.column, head.text);
      }
      open = UpdateBatch{};
      open.epoch_id = parse_int<std::uint64_t>(tokens[1], line_no, "epoch id");
      if (have_previous && open.epoch_id <= previous_epoch) {
        throw EpochLogParseError("epoch ids must be strictly increasing",
                                 line_no, tokens[1].column, tokens[1].text);
      }
      in_batch = true;
      continue;
    }
    if (head.text == "seal") {
      if (!in_batch) {
        throw EpochLogParseError("seal outside a batch", line_no, head.column,
                                 head.text);
      }
      if (tokens.size() != 2) {
        throw EpochLogParseError("seal takes exactly one crc", line_no,
                                 head.column, head.text);
      }
      const std::uint64_t want = batch_crc(open);
      if (tokens[1].text != "auto") {
        std::uint64_t got = 0;
        const char* first = tokens[1].text.data();
        const char* last = first + tokens[1].text.size();
        const auto [ptr, ec] = std::from_chars(first, last, got, 16);
        if (ec != std::errc{} || ptr != last) {
          throw EpochLogParseError("expected crc64 hex or 'auto'", line_no,
                                   tokens[1].column, tokens[1].text);
        }
        if (got != want) {
          throw EpochLogParseError(
              "seal mismatch (batch bytes changed; want " + crc_hex(want) + ")",
              line_no, tokens[1].column, tokens[1].text);
        }
      }
      have_previous = true;
      previous_epoch = open.epoch_id;
      batches.push_back(std::move(open));
      in_batch = false;
      continue;
    }

    if (!in_batch) {
      throw EpochLogParseError("mutation outside a batch (missing 'epoch')",
                               line_no, head.column, head.text);
    }
    Mutation m;
    if (head.text == "insert") {
      if (tokens.size() != 3) {
        throw EpochLogParseError("insert takes profit and weight", line_no,
                                 head.column, head.text);
      }
      m.kind = MutationKind::kInsert;
      m.profit = parse_int<std::int64_t>(tokens[1], line_no, "profit");
      m.weight = parse_int<std::int64_t>(tokens[2], line_no, "weight");
    } else if (head.text == "delete") {
      if (tokens.size() != 2) {
        throw EpochLogParseError("delete takes an index", line_no, head.column,
                                 head.text);
      }
      m.kind = MutationKind::kDelete;
      m.index = parse_int<std::size_t>(tokens[1], line_no, "index");
    } else if (head.text == "profit") {
      if (tokens.size() != 3) {
        throw EpochLogParseError("profit takes index and value", line_no,
                                 head.column, head.text);
      }
      m.kind = MutationKind::kProfitUpdate;
      m.index = parse_int<std::size_t>(tokens[1], line_no, "index");
      m.profit = parse_int<std::int64_t>(tokens[2], line_no, "value");
    } else if (head.text == "weight") {
      if (tokens.size() != 3) {
        throw EpochLogParseError("weight takes index and value", line_no,
                                 head.column, head.text);
      }
      m.kind = MutationKind::kWeightUpdate;
      m.index = parse_int<std::size_t>(tokens[1], line_no, "index");
      m.weight = parse_int<std::int64_t>(tokens[2], line_no, "value");
    } else {
      throw EpochLogParseError("unknown directive", line_no, head.column,
                               head.text);
    }
    open.mutations.push_back(m);
  }
  if (in_batch) {
    throw EpochLogParseError("log ends inside an unsealed batch", last_line_no,
                             1, "epoch " + std::to_string(open.epoch_id));
  }
  return batches;
}

std::vector<UpdateBatch> load_epoch_log(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    throw std::runtime_error("load_epoch_log: cannot open " + path);
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) {
    throw std::runtime_error("load_epoch_log: read failed on " + path);
  }
  return parse_epoch_log(buffer.str());
}

knapsack::Instance apply_batch(const knapsack::Instance& base,
                               const UpdateBatch& batch) {
  std::vector<knapsack::Item> items(base.items().begin(), base.items().end());
  const auto check_index = [&](const Mutation& m) {
    if (m.index >= items.size()) {
      throw std::invalid_argument(
          "apply_batch: epoch " + std::to_string(batch.epoch_id) + " " +
          mutation_kind_name(m.kind) + " index " + std::to_string(m.index) +
          " out of range (n=" + std::to_string(items.size()) + ")");
    }
  };
  const auto check_value = [&](const Mutation& m, std::int64_t value,
                               const char* what) {
    if (value < 0) {
      throw std::invalid_argument(
          "apply_batch: epoch " + std::to_string(batch.epoch_id) + " " +
          mutation_kind_name(m.kind) + ": negative " + what);
    }
  };
  for (const auto& m : batch.mutations) {
    switch (m.kind) {
      case MutationKind::kInsert:
        check_value(m, m.profit, "profit");
        check_value(m, m.weight, "weight");
        items.push_back(knapsack::Item{m.profit, m.weight});
        break;
      case MutationKind::kDelete:
        check_index(m);
        items[m.index] = knapsack::Item{0, 0};  // tombstone, indices stable
        break;
      case MutationKind::kProfitUpdate:
        check_index(m);
        check_value(m, m.profit, "profit");
        items[m.index].profit = m.profit;
        break;
      case MutationKind::kWeightUpdate:
        check_index(m);
        check_value(m, m.weight, "weight");
        items[m.index].weight = m.weight;
        break;
    }
  }
  try {
    return knapsack::Instance(std::move(items), base.capacity());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(
        "apply_batch: epoch " + std::to_string(batch.epoch_id) +
        " violates instance invariants: " + e.what());
  }
}

}  // namespace lcaknap::dyn
