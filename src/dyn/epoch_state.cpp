#include "dyn/epoch_state.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace lcaknap::dyn {

namespace {

std::vector<double> advance_buckets() {
  // 10us .. ~80s: delta replays land in the low milliseconds, full re-warm-
  // ups of large instances in the seconds.
  return metrics::Histogram::exponential_buckets(10.0, 2.0, 23);
}

}  // namespace

EpochedState::EpochedState(knapsack::Instance base, const EpochConfig& config,
                           metrics::Registry& registry)
    : config_(config),
      advances_delta_(&registry.counter(
          "dyn_epoch_advances_total",
          "Epoch advances by warm-up path (delta replay vs full re-warm-up)",
          {{"path", "delta"}})),
      advances_rewarm_(&registry.counter(
          "dyn_epoch_advances_total",
          "Epoch advances by warm-up path (delta replay vs full re-warm-up)",
          {{"path", "rewarm"}})),
      mutations_insert_(&registry.counter("dyn_update_mutations_total",
                                          "Applied mutations by kind",
                                          {{"kind", "insert"}})),
      mutations_delete_(&registry.counter("dyn_update_mutations_total",
                                          "Applied mutations by kind",
                                          {{"kind", "delete"}})),
      mutations_profit_(&registry.counter("dyn_update_mutations_total",
                                          "Applied mutations by kind",
                                          {{"kind", "profit"}})),
      mutations_weight_(&registry.counter("dyn_update_mutations_total",
                                          "Applied mutations by kind",
                                          {{"kind", "weight"}})),
      epoch_gauge_(&registry.gauge("dyn_epoch",
                                   "Current epoch id of the evolving instance")),
      advance_us_(&registry.histogram("dyn_advance_us",
                                      "Wall time of one epoch advance",
                                      advance_buckets())) {
  auto epoch = std::make_shared<Epoch>();
  epoch->epoch_id = 0;
  epoch->instance =
      std::make_unique<const knapsack::Instance>(std::move(base));
  epoch->access =
      std::make_unique<const oracle::MaterializedAccess>(*epoch->instance);
  epoch->lca = std::make_unique<const core::LcaKp>(*epoch->access, config_.lca);
  epoch->run = std::make_shared<const core::LcaKpRun>(epoch->lca->run_warmup(
      config_.tape_seed, config_.warmup_threads, nullptr, &trace_));
  epoch->digest = core::run_digest(*epoch->run);
  current_ = std::move(epoch);
  epoch_gauge_->set(0.0);
}

std::shared_ptr<const EpochedState::Epoch> EpochedState::current() const {
  std::lock_guard lock(mutex_);
  return current_;
}

std::uint64_t EpochedState::current_epoch_id() const {
  return current()->epoch_id;
}

AdvanceReport EpochedState::advance(const UpdateBatch& batch) {
  std::lock_guard advance_lock(advance_mutex_);
  const auto started = std::chrono::steady_clock::now();
  const std::shared_ptr<const Epoch> base = current();
  if (batch.epoch_id <= base->epoch_id) {
    throw std::invalid_argument(
        "EpochedState::advance: epoch id " + std::to_string(batch.epoch_id) +
        " not above current " + std::to_string(base->epoch_id));
  }

  auto next = std::make_shared<Epoch>();
  next->epoch_id = batch.epoch_id;
  next->instance = std::make_unique<const knapsack::Instance>(
      apply_batch(*base->instance, batch));
  next->access =
      std::make_unique<const oracle::MaterializedAccess>(*next->instance);
  next->lca = std::make_unique<const core::LcaKp>(*next->access, config_.lca);

  const DeltaPlan plan = plan_delta(*base->instance, batch);
  AdvanceReport report;
  report.epoch_id = batch.epoch_id;
  report.mutations = batch.mutations.size();
  report.reason = plan.reason;
  core::LcaKpRun run;
  if (plan.delta_eligible) {
    try {
      run = replay_delta(*next->lca, trace_);
      report.delta = true;
    } catch (const std::runtime_error& e) {
      // Defensive: the rule said sound but the replay disagreed.  Fall back
      // rather than serve unverified state; the reason travels upward.
      report.reason = std::string("delta-unsound: ") + e.what();
    }
    if (report.delta && config_.verify_digest) {
      const core::LcaKpRun fresh =
          next->lca->run_warmup(config_.tape_seed, config_.warmup_threads);
      if (core::run_digest(fresh) != core::run_digest(run)) {
        throw std::logic_error(
            "EpochedState::advance: delta replay digest mismatch at epoch " +
            std::to_string(batch.epoch_id) +
            " (soundness-rule bug — delta path is not equivalent)");
      }
    }
  }
  if (!report.delta) {
    // Full re-warm-up, re-traced: the new trace is the base for any chain
    // of delta advances that follows.
    run = next->lca->run_warmup(config_.tape_seed, config_.warmup_threads,
                                nullptr, &trace_);
  }
  next->run = std::make_shared<const core::LcaKpRun>(std::move(run));
  next->digest = core::run_digest(*next->run);
  report.digest = next->digest;

  for (const auto& m : batch.mutations) {
    switch (m.kind) {
      case MutationKind::kInsert: mutations_insert_->inc(); break;
      case MutationKind::kDelete: mutations_delete_->inc(); break;
      case MutationKind::kProfitUpdate: mutations_profit_->inc(); break;
      case MutationKind::kWeightUpdate: mutations_weight_->inc(); break;
    }
  }
  (report.delta ? advances_delta_ : advances_rewarm_)->inc();
  epoch_gauge_->set(static_cast<double>(batch.epoch_id));
  {
    std::lock_guard lock(mutex_);
    current_ = std::move(next);
  }
  advance_us_->observe(
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - started)
          .count());
  return report;
}

}  // namespace lcaknap::dyn
