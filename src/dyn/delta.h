#ifndef LCAKNAP_DYN_DELTA_H
#define LCAKNAP_DYN_DELTA_H

#include <string>

#include "core/lca_kp.h"
#include "dyn/update.h"
#include "knapsack/instance.h"

/// \file delta.h
/// Delta warm-up: patching `(L(Ĩ), EPS)` across an epoch advance without
/// re-drawing the warm-up's millions of weighted samples.
///
/// The soundness rule (unit-tested in tests/dyn, documented in
/// docs/DYNAMIC.md): both warm-up sweeps draw item indices with probability
/// proportional to *profit* (MaterializedAccess's alias table), the step-1
/// filter keeps an index iff norm_profit > eps², and the step-2 ECDF is a
/// counting sort over grid efficiencies.  Hence a batch that leaves the
/// profit vector and the item count unchanged — weight updates, and profit
/// updates writing the value already present — provably leaves every PRF
/// substream's index-draw sequence and both filters unchanged.  For such a
/// batch the epoch-N run is a *replay*: re-read only the distinct indices
/// recorded in the base epoch's `WarmupTrace` (their weights may have
/// changed), rebuild the large records and the efficiency multiset, and
/// complete the run through the exact same tail arithmetic
/// (`LcaKp::complete_run_from_sweeps`).  The replayed run is byte-equal —
/// `run_digest`-equal — to a fresh `run_warmup` of the mutated instance
/// (Lemma 4.9 extended across epochs; pinned by the differential suite and
/// the bench's in-binary gate).
///
/// Everything else — inserts (change n and the profit vector), deletes
/// (tombstones zero a profit), profit changes — re-weights the alias table,
/// so the drawn index sequences change arbitrarily and the trace says
/// nothing about the new epoch: those batches fall back to the full 64-shard
/// `run_warmup`.  The rule is deliberately conservative: it may fall back
/// unnecessarily (e.g. a delete of an item that was never drawn) but never
/// claims a delta it cannot prove.

namespace lcaknap::dyn {

/// The soundness decision for one batch against its base instance.
struct DeltaPlan {
  bool delta_eligible = false;
  /// Why: "weight-only" / "empty-batch" when eligible; the first
  /// disqualifying mutation's reason otherwise.
  std::string reason;
};

/// Decides delta eligibility.  Pure function of (base, batch); does not
/// validate indices (apply_batch does) — an out-of-range mutation is simply
/// reported ineligible here and throws there.
[[nodiscard]] DeltaPlan plan_delta(const knapsack::Instance& base,
                                   const UpdateBatch& batch);

/// Replays a traced warm-up against `lca` (constructed over the *mutated*
/// instance, same config and tape seed as the trace's warm-up).  Cost:
/// O(distinct traced indices) oracle queries, zero weighted samples.
/// Throws std::runtime_error if the trace's invariants do not hold against
/// the new instance (e.g. a traced-large index no longer classifies large) —
/// the caller treats that as "delta unsound" and falls back; it cannot
/// happen for a plan_delta-eligible batch.
[[nodiscard]] core::LcaKpRun replay_delta(const core::LcaKp& lca,
                                          const core::WarmupTrace& trace);

}  // namespace lcaknap::dyn

#endif  // LCAKNAP_DYN_DELTA_H
