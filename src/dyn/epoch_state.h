#ifndef LCAKNAP_DYN_EPOCH_STATE_H
#define LCAKNAP_DYN_EPOCH_STATE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/lca_kp.h"
#include "dyn/delta.h"
#include "dyn/update.h"
#include "knapsack/instance.h"
#include "metrics/metrics.h"
#include "oracle/access.h"

/// \file epoch_state.h
/// `EpochedState`: the evolving instance and its warm state, versioned by
/// epoch.  Each epoch is an immutable bundle — instance, oracle access, the
/// LCA over it, and a `shared_ptr<const LcaKpRun>` — swapped atomically
/// under a small mutex on advance.  Readers copy the current epoch pointer
/// and keep serving from it; they never block on an advance, and an epoch
/// stays alive as long as any reader still holds it (in-flight requests
/// admitted under epoch N legally complete with epoch-N answers after the
/// advance to N+1; the served epoch is what gets attributed downstream).
///
/// `advance` applies one `UpdateBatch` and chooses the cheap path when the
/// soundness rule allows (plan_delta/replay_delta, O(distinct traced
/// indices)) and the full 64-shard `run_warmup` otherwise.  The base
/// `WarmupTrace` stays valid across any chain of delta advances (profits
/// never change on that path) and is re-recorded on every re-warm-up.

namespace lcaknap::dyn {

struct EpochConfig {
  core::LcaKpConfig lca;
  /// Warm-up tape seed; replicas serving identical answers share it.
  std::uint64_t tape_seed = 1;
  /// Warm-up threads (0 = config.lca.warmup_threads semantics).
  std::size_t warmup_threads = 0;
  /// Paranoid mode: after every delta advance, also run the full warm-up of
  /// the mutated instance and require digest equality (the Lemma 4.9
  /// contract, checked live).  Expensive — for tests, drills, and benches.
  bool verify_digest = false;
};

/// What one advance did, for operators and benches.
struct AdvanceReport {
  std::uint64_t epoch_id = 0;
  bool delta = false;        ///< took the replay path (vs full re-warm-up)
  std::string reason;        ///< plan_delta reason, or the fallback cause
  std::size_t mutations = 0;
  std::uint64_t digest = 0;  ///< run_digest of the new epoch's warm state
};

class EpochedState {
 public:
  /// One immutable epoch.  Members are ordered so destruction tears down
  /// dependents first (lca references access references instance).
  struct Epoch {
    std::uint64_t epoch_id = 0;
    std::unique_ptr<const knapsack::Instance> instance;
    std::unique_ptr<const oracle::MaterializedAccess> access;
    std::unique_ptr<const core::LcaKp> lca;
    std::shared_ptr<const core::LcaKpRun> run;
    std::uint64_t digest = 0;
  };

  /// Warms epoch 0 from `base` (traced, so the first advance can replay).
  EpochedState(knapsack::Instance base, const EpochConfig& config,
               metrics::Registry& registry);

  /// The current epoch; callers hold the returned pointer for as long as
  /// they serve from it.
  [[nodiscard]] std::shared_ptr<const Epoch> current() const;
  [[nodiscard]] std::uint64_t current_epoch_id() const;

  /// Applies one batch and installs the next epoch.  Serialized; concurrent
  /// readers keep serving the previous epoch until the swap.  Throws
  /// std::invalid_argument on a non-monotone epoch id or an invalid batch,
  /// and std::logic_error if `verify_digest` catches a delta/fresh mismatch
  /// (a soundness-rule bug — never expected).
  AdvanceReport advance(const UpdateBatch& batch);

 private:
  EpochConfig config_;
  core::WarmupTrace trace_;  ///< of the last full warm-up; guarded by advance_mutex_

  mutable std::mutex mutex_;  ///< guards current_
  std::shared_ptr<const Epoch> current_;
  std::mutex advance_mutex_;  ///< serializes advance()

  metrics::Counter* advances_delta_;
  metrics::Counter* advances_rewarm_;
  metrics::Counter* mutations_insert_;
  metrics::Counter* mutations_delete_;
  metrics::Counter* mutations_profit_;
  metrics::Counter* mutations_weight_;
  metrics::Gauge* epoch_gauge_;
  metrics::Histogram* advance_us_;
};

}  // namespace lcaknap::dyn

#endif  // LCAKNAP_DYN_EPOCH_STATE_H
