#ifndef LCAKNAP_DYN_UPDATE_H
#define LCAKNAP_DYN_UPDATE_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "knapsack/instance.h"

/// \file update.h
/// The epoch log: an ordered, CRC64-sealed batch format of item mutations.
/// Production knapsack instances mutate — items arrive, disappear, and
/// reprice — and every downstream conclusion (warm state, cached answers,
/// snapshots, certificates) is scoped to the instance version it was derived
/// from.  The epoch log makes that version explicit: each batch carries a
/// monotone `epoch_id`, and applying batch N to the epoch-(N-1) instance
/// yields the epoch-N instance, deterministically, on every replica that
/// consumes the same log.
///
/// Text grammar (one directive per line; `#` starts a comment line):
///
///   batch  := 'epoch' ID mutation* 'seal' (CRC64HEX | 'auto')
///   mutation := 'insert' PROFIT WEIGHT
///             | 'delete' INDEX
///             | 'profit' INDEX VALUE
///             | 'weight' INDEX VALUE
///
/// The seal is CRC-64/XZ over the batch's canonical serialization
/// (`serialize_batch`), so a log survives hand edits only when resealed —
/// `auto` is the documented hand-authoring escape hatch (accept the computed
/// CRC; see docs/DYNAMIC.md).  Epoch ids must be strictly increasing within
/// a log.  Parse failures throw `EpochLogParseError` with the 1-based
/// line:column and the offending token, mirroring `FaultPlanParseError`.
///
/// Delete semantics are tombstones: the item becomes (profit 0, weight 0),
/// preserving every other item's index.  A tombstone is never drawn by
/// weighted sampling (profit 0) and including it in a solution is feasible
/// and value-neutral, so answers about live items are unaffected.

namespace lcaknap::dyn {

enum class MutationKind : std::uint8_t {
  kInsert = 0,
  kDelete = 1,
  kProfitUpdate = 2,
  kWeightUpdate = 3,
};

[[nodiscard]] const char* mutation_kind_name(MutationKind kind) noexcept;

struct Mutation {
  MutationKind kind = MutationKind::kWeightUpdate;
  std::size_t index = 0;    ///< target item (delete / profit / weight)
  std::int64_t profit = 0;  ///< insert: item profit; profit: new value
  std::int64_t weight = 0;  ///< insert: item weight; weight: new value
};

/// One sealed unit of the log: all mutations advancing to `epoch_id`.
struct UpdateBatch {
  std::uint64_t epoch_id = 0;
  std::vector<Mutation> mutations;
};

/// Typed parse failure carrying the 1-based location and offending token
/// (same shape as fault::FaultPlanParseError).
class EpochLogParseError : public std::invalid_argument {
 public:
  EpochLogParseError(std::string reason, std::size_t line, std::size_t column,
                     std::string token)
      : std::invalid_argument("epoch log:" + std::to_string(line) + ":" +
                              std::to_string(column) + ": " + reason + ": '" +
                              token + "'"),
        line_(line),
        column_(column),
        token_(std::move(token)) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }
  [[nodiscard]] const std::string& token() const noexcept { return token_; }

 private:
  std::size_t line_;
  std::size_t column_;
  std::string token_;
};

/// Canonical serialization of one batch *without* its seal line — exactly
/// the bytes the seal CRC covers.
[[nodiscard]] std::string serialize_batch(const UpdateBatch& batch);

/// CRC-64/XZ of `serialize_batch(batch)`.
[[nodiscard]] std::uint64_t batch_crc(const UpdateBatch& batch);

/// Full log serialization: every batch in order, each followed by its
/// computed `seal` line.  `parse_epoch_log` round-trips this byte-exactly.
[[nodiscard]] std::string serialize_epoch_log(std::span<const UpdateBatch> batches);

/// Parses a full epoch log; throws EpochLogParseError on malformed input,
/// seal mismatch, or non-monotone epoch ids.
[[nodiscard]] std::vector<UpdateBatch> parse_epoch_log(std::string_view text);

/// Reads and parses an epoch log file; IO failures throw std::runtime_error,
/// format failures EpochLogParseError.
[[nodiscard]] std::vector<UpdateBatch> load_epoch_log(const std::string& path);

/// Applies a batch, returning the mutated instance (the input is untouched).
/// Out-of-range indices, negative values, or mutations that violate the
/// Instance invariants (e.g. a weight above the capacity, or tombstoning the
/// last positive-profit item) throw std::invalid_argument.
[[nodiscard]] knapsack::Instance apply_batch(const knapsack::Instance& base,
                                             const UpdateBatch& batch);

}  // namespace lcaknap::dyn

#endif  // LCAKNAP_DYN_UPDATE_H
