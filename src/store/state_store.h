#ifndef LCAKNAP_STORE_STATE_STORE_H
#define LCAKNAP_STORE_STATE_STORE_H

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/lca_kp.h"
#include "metrics/metrics.h"
#include "store/snapshot.h"

/// \file state_store.h
/// Multi-tenant warm-state store: many `(L(Ĩ), EPS)` instances, one process.
///
/// `ServeEngine` holds exactly one warm instance; a real serving process
/// hosts many tenants, each with its own instance, seed, and warm-up tape.
/// `StateStore` manages those warm states by instance id:
///
///  * **capacity-bounded LRU** of in-memory warm runs — the memory bound is
///    the number of simultaneously-warm tenants, not request volume;
///  * **miss path** that first tries to rehydrate from the snapshot
///    directory (fingerprint- and CRC-verified; any rejection is counted
///    and the snapshot is *never* served) and otherwise falls back to a
///    live warm-up, persisting the result for the next process;
///  * **single-flight** hydration — concurrent requests for a cold
///    instance trigger exactly one warm-up; every other caller waits for
///    and shares that result (Lemma 4.9 makes sharing sound: the state is
///    a pure function of the tenant's seed and tape, so there is nothing
///    request-specific to recompute);
///  * `store_*` metrics: hits/misses/evictions, hydrations by source,
///    snapshot load/save/warm-up latency, and rejections by reason
///    (see docs/OBSERVABILITY.md and docs/PERSISTENCE.md).
///
/// Thread-safe.  The returned runs are shared and immutable — exactly the
/// read-only state the engine's workers already consume concurrently.

namespace lcaknap::store {

struct StateStoreConfig {
  /// Maximum warm states held in memory; beyond it, least-recently-used
  /// tenants are evicted (their snapshots, if any, stay on disk).
  std::size_t capacity = 8;
  /// Snapshot directory; empty disables persistence (memory-only store).
  std::string snapshot_dir;
  /// Persist a freshly warmed state to `snapshot_dir` so the next process
  /// (or the next eviction victim) rehydrates instead of re-warming.
  bool persist_after_warmup = true;
  /// Threads for live warm-ups (0 = the tenant LcaKp's own config).
  std::size_t warmup_threads = 0;
};

/// Point-in-time counters (also exported as `store_*` metric families).
struct StateStoreStats {
  std::uint64_t hits = 0;        ///< get() served from the in-memory LRU
  std::uint64_t misses = 0;      ///< get() that had to hydrate
  std::uint64_t coalesced = 0;   ///< get() that waited on another's hydration
  std::uint64_t evictions = 0;   ///< warm states dropped by the LRU bound
  std::uint64_t snapshot_hydrations = 0;  ///< misses served from a snapshot
  std::uint64_t live_warmups = 0;         ///< misses served by a live warm-up
  std::uint64_t snapshots_saved = 0;
  std::uint64_t rejected_mismatch = 0;   ///< fingerprint of another context
  std::uint64_t rejected_corrupt = 0;    ///< CRC/magic/version/structure
  std::uint64_t rejected_truncated = 0;
  std::uint64_t rejected_io = 0;         ///< unreadable / failed save
};

class StateStore {
 public:
  explicit StateStore(StateStoreConfig config,
                      metrics::Registry& registry = metrics::global_registry());

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// The warm state for tenant `id`, hydrating it if cold.  `lca` is the
  /// tenant's configured algorithm (it must outlive the call, not the
  /// store); `tape_seed` is the warm-up tape of Theorem 4.1's one-time run.
  /// The (id -> lca, tape_seed) binding is the caller's contract: the store
  /// verifies snapshots against `fingerprint_of(lca, tape_seed)`, so a
  /// stale or foreign snapshot under this id is rejected and re-warmed,
  /// never served.  Throws only what the tenant's oracle throws (snapshot
  /// failures fall back to live warm-up); `id` must be non-empty and use
  /// only [A-Za-z0-9._-] (it names the snapshot file).  `epoch_id` versions
  /// the binding for dynamic instances (src/dyn): the fingerprint embeds it,
  /// so after an epoch advance the caller's `invalidate(id)` + next `get`
  /// with the new epoch rejects the previous epoch's snapshot as a
  /// SnapshotMismatch and re-persists the new one.
  [[nodiscard]] std::shared_ptr<const core::LcaKpRun> get(
      const std::string& id, const core::LcaKp& lca, std::uint64_t tape_seed,
      std::uint64_t epoch_id = 0);

  /// Whether `id` is currently warm in memory (does not touch LRU order).
  [[nodiscard]] bool contains(const std::string& id) const;
  /// Warm states currently in memory.
  [[nodiscard]] std::size_t size() const;
  /// Ids of the warm states currently in memory, most recently used first
  /// (does not touch LRU order).  The network front-end's runbook surface:
  /// `lcaknap serve --listen` reports it per tenant sweep.
  [[nodiscard]] std::vector<std::string> warm_ids() const;
  /// Drops `id` from memory (its on-disk snapshot is untouched).  A
  /// hydration in flight for `id` is marked invalidated: its waiters still
  /// receive the result they asked for, but the store does not retain it —
  /// the single-flight machinery must not resurrect a stale entry after the
  /// caller has declared it dead (epoch advance relies on this).
  void invalidate(const std::string& id);

  [[nodiscard]] StateStoreStats stats() const;
  [[nodiscard]] const StateStoreConfig& config() const noexcept {
    return config_;
  }
  /// Where `id`'s snapshot lives (valid even with persistence disabled).
  [[nodiscard]] std::string snapshot_path(const std::string& id) const;

 private:
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const core::LcaKpRun> result;
    std::exception_ptr error;
    /// Set by invalidate() while this hydration is still in flight; guarded
    /// by the *store* mutex_ (not `mutex` above).  The owner checks it under
    /// mutex_ before inserting into the LRU.
    bool invalidated = false;
  };
  struct Entry {
    std::string id;
    std::shared_ptr<const core::LcaKpRun> run;
  };

  /// The miss path, run outside `mutex_` by exactly one caller per cold id.
  [[nodiscard]] std::shared_ptr<const core::LcaKpRun> hydrate(
      const std::string& id, const core::LcaKp& lca, std::uint64_t tape_seed,
      std::uint64_t epoch_id);
  void insert_and_evict(const std::string& id,
                        std::shared_ptr<const core::LcaKpRun> run);
  void count_rejection(const SnapshotError& error);

  StateStoreConfig config_;

  metrics::Counter* hits_;
  metrics::Counter* misses_;
  metrics::Counter* coalesced_;
  metrics::Counter* evictions_;
  metrics::Counter* hydrations_snapshot_;
  metrics::Counter* hydrations_warmup_;
  metrics::Counter* snapshots_saved_;
  metrics::Counter* rejected_mismatch_;
  metrics::Counter* rejected_corrupt_;
  metrics::Counter* rejected_truncated_;
  metrics::Counter* rejected_io_;
  metrics::Histogram* load_us_;
  metrics::Histogram* save_us_;
  metrics::Histogram* warmup_us_;
  metrics::Gauge* entries_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_id_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
  StateStoreStats stats_;
};

}  // namespace lcaknap::store

#endif  // LCAKNAP_STORE_STATE_STORE_H
