#ifndef LCAKNAP_STORE_SNAPSHOT_H
#define LCAKNAP_STORE_SNAPSHOT_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/lca_kp.h"

/// \file snapshot.h
/// Versioned, checksummed binary persistence for `LcaKpRun` warm state.
///
/// The LCA model's whole point is that a small shared state plus a read-only
/// seed answers any query consistently (Lemma 4.9): every served answer is a
/// pure function of `(L(Ĩ), EPS)`.  That small state is exactly what this
/// format serializes — once a warm-up has been paid, the run can be written
/// to disk, verified, and rehydrated across process restarts and across many
/// tenant instances, with `core::run_digest` as the byte-equality oracle
/// proving a loaded snapshot is indistinguishable from a live warm-up.
///
/// Layout (all integers little-endian, no padding; see docs/PERSISTENCE.md):
///
///   magic "LCAKSNAP" | u32 version | u64 total_size
///   fingerprint block (instance identity + resolved config + tape layout)
///   payload: sorted L(Ĩ) indices, small-item rule, EPS (grid + doubles),
///            diagnostics (large_mass, q, t, samples_used, tilde_size)
///   u64 CRC-64/XZ over every preceding byte
///
/// Safety invariants, enforced at load:
///  * any bit flip is rejected (`SnapshotCorrupt`) — the CRC covers the
///    whole file including magic, version, and fingerprint;
///  * any truncation is rejected (`SnapshotTruncated`) — the header records
///    the expected total size;
///  * a snapshot can never be loaded against the wrong instance or config
///    (`SnapshotMismatch`) — the fingerprint pins (n, capacity, totals),
///    the shared seed, eps and every resolved sampling parameter, the
///    warm-up tape seed, and the shard layout;
///  * a crashed writer never leaves a loadable half-snapshot — writes go to
///    a temp file that is atomically renamed into place (`write_snapshot`).

namespace lcaknap::store {

/// Everything that determines the warm-up's output, captured so a snapshot
/// is only ever rehydrated into an exactly-equivalent serving context.  Two
/// fingerprints are equal iff a live warm-up under either would produce the
/// same `(L(Ĩ), EPS)` byte-for-byte (instance identity is approximated by
/// the metadata the access model exposes for free: n, capacity, totals).
struct SnapshotFingerprint {
  // --- instance identity (free metadata of Definition 2.2) ----------------
  std::uint64_t n = 0;
  std::int64_t capacity = 0;
  std::int64_t total_profit = 0;
  std::int64_t total_weight = 0;
  // --- shared seed + resolved run parameters ------------------------------
  double eps = 0.0;
  std::uint64_t seed = 0;
  std::uint32_t domain_bits = 0;
  std::uint32_t branching = 0;
  double tau = 0.0;
  double rho = 0.0;
  double beta = 0.0;
  std::uint64_t large_samples = 0;
  std::uint64_t quantile_samples = 0;
  // --- warm-up tape layout -------------------------------------------------
  std::uint64_t tape_seed = 0;
  std::uint32_t warmup_shards = 0;
  bool reproducible_quantiles = true;
  bool paper_constants = false;
  // --- instance version (src/dyn) ------------------------------------------
  /// Epoch of the evolving instance this warm state was derived from; 0 for
  /// static instances.  Two epochs of one tenant share every field above
  /// when a batch only re-weights items, so the epoch id is part of the
  /// identity: a stale-epoch snapshot must be a SnapshotMismatch, not a
  /// silently-served answer from the past.
  std::uint64_t epoch_id = 0;

  /// Field-wise equality; doubles compare by bit pattern (a fingerprint is
  /// an identity, not a measurement, so -0.0 vs 0.0 must not unify).
  [[nodiscard]] bool equals(const SnapshotFingerprint& other) const noexcept;
};

/// The fingerprint a live warm-up of `lca` with `run_warmup(tape_seed)`
/// would carry: instance metadata read through the access object, the
/// *resolved* sampling parameters (not the raw config, whose auto fields
/// could resolve differently across versions), and the fixed shard layout.
[[nodiscard]] SnapshotFingerprint fingerprint_of(const core::LcaKp& lca,
                                                 std::uint64_t tape_seed,
                                                 std::uint64_t epoch_id = 0);

// --- error taxonomy ---------------------------------------------------------

/// Base of every snapshot failure; catch this to mean "do a live warm-up".
class SnapshotError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// The file ends before the size its own header promises (or is shorter
/// than any valid header).  A crashed writer cannot produce this — writes
/// are temp-then-rename — but an operator's stray `cp` mid-flight can.
class SnapshotTruncated final : public SnapshotError {
  using SnapshotError::SnapshotError;
};
/// Bad magic, unsupported version, failed CRC, or non-canonical structure.
/// Never served: the caller must fall back to a live warm-up.
class SnapshotCorrupt final : public SnapshotError {
  using SnapshotError::SnapshotError;
};
/// Structurally valid snapshot of a *different* serving context (other
/// instance, seed, eps, sampling budgets, tape, or shard layout).
class SnapshotMismatch final : public SnapshotError {
  using SnapshotError::SnapshotError;
};
/// The file could not be read or written at all (missing, permissions, …).
class SnapshotIoError final : public SnapshotError {
  using SnapshotError::SnapshotError;
};

// --- encoding ----------------------------------------------------------------

inline constexpr char kSnapshotMagic[8] = {'L', 'C', 'A', 'K',
                                           'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// CRC-64/XZ (the reflected form of the ECMA-182 polynomial,
/// 0x42F0E1EBA9EA3693), the trailer checksum.  Exposed so tests can craft
/// deliberately-corrupt-but-checksummed buffers (e.g. to exercise the
/// version check behind a valid CRC), and reused by the certificate log
/// (src/cert) so one checksum implementation seals both formats.
[[nodiscard]] std::uint64_t crc64(std::string_view bytes) noexcept;

/// Canonical byte size of an encoded `SnapshotFingerprint` block.  The
/// fingerprint encoding is shared with the certificate log header
/// (docs/CERTIFICATES.md), which embeds the block verbatim so a certificate
/// log and the snapshot it audits against are pinned by the same identity.
inline constexpr std::size_t kFingerprintBytes = 120;

/// Appends the canonical fixed-width little-endian encoding of `fp`
/// (exactly `kFingerprintBytes` bytes) to `out`.
void encode_fingerprint(std::string& out, const SnapshotFingerprint& fp);

/// Decodes a fingerprint block produced by `encode_fingerprint`.  Throws
/// SnapshotTruncated when `bytes` is shorter than `kFingerprintBytes` and
/// SnapshotCorrupt on unknown flag bits or trailing bytes.
[[nodiscard]] SnapshotFingerprint decode_fingerprint(std::string_view bytes);

/// Serializes `(fingerprint, run)` into the canonical byte string: two
/// encodes of the same state are bit-identical (large indices are sorted,
/// all widths fixed), so snapshot bytes can themselves be compared or
/// content-addressed.
[[nodiscard]] std::string encode_snapshot(const SnapshotFingerprint& fingerprint,
                                          const core::LcaKpRun& run);

/// Parses and fully validates a snapshot buffer.  Order of checks: header
/// shape and size (SnapshotTruncated), CRC over the whole buffer, then
/// magic/version/structure (SnapshotCorrupt), then — when `expected` is
/// given — the fingerprint (SnapshotMismatch).  On success, `actual` (when
/// non-null) receives the stored fingerprint.
[[nodiscard]] core::LcaKpRun decode_snapshot(
    std::string_view bytes, const SnapshotFingerprint* expected = nullptr,
    SnapshotFingerprint* actual = nullptr);

// --- file protocol -----------------------------------------------------------

/// Atomic snapshot write: encodes into `path + ".tmp"`, flushes, then
/// renames over `path`.  A reader concurrent with a crash sees either the
/// old complete snapshot or the new complete snapshot, never a prefix.
/// Throws SnapshotIoError on any filesystem failure (the temp is removed).
void write_snapshot(const std::string& path,
                    const SnapshotFingerprint& fingerprint,
                    const core::LcaKpRun& run);

/// Reads and validates `path` (see decode_snapshot for the check order and
/// exception contract; missing/unreadable files throw SnapshotIoError).
[[nodiscard]] core::LcaKpRun read_snapshot(
    const std::string& path, const SnapshotFingerprint* expected = nullptr,
    SnapshotFingerprint* actual = nullptr);

/// The stored fingerprint of a snapshot file, after full validation (the
/// CRC covers the fingerprint, so this reads the whole file).
[[nodiscard]] SnapshotFingerprint read_snapshot_fingerprint(
    const std::string& path);

}  // namespace lcaknap::store

#endif  // LCAKNAP_STORE_SNAPSHOT_H
