#include "store/state_store.h"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace lcaknap::store {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] bool valid_id(const std::string& id) noexcept {
  if (id.empty()) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

[[nodiscard]] double elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since).count();
}

[[nodiscard]] std::vector<double> store_latency_buckets() {
  // 10 us .. ~80 s: snapshot loads land low, cold warm-ups can be seconds.
  return metrics::Histogram::exponential_buckets(10.0, 2.0, 23);
}

}  // namespace

StateStore::StateStore(StateStoreConfig config, metrics::Registry& registry)
    : config_(std::move(config)),
      hits_(&registry.counter("store_hits_total",
                              "StateStore lookups served from the in-memory LRU")),
      misses_(&registry.counter("store_misses_total",
                                "StateStore lookups that had to hydrate")),
      coalesced_(&registry.counter(
          "store_coalesced_waits_total",
          "StateStore lookups that waited on another caller's hydration "
          "(single-flight)")),
      evictions_(&registry.counter("store_evictions_total",
                                   "Warm states evicted by the LRU bound")),
      hydrations_snapshot_(&registry.counter(
          "store_hydrations_total", "Cold instances made warm, by source",
          {{"source", "snapshot"}})),
      hydrations_warmup_(&registry.counter(
          "store_hydrations_total", "Cold instances made warm, by source",
          {{"source", "warmup"}})),
      snapshots_saved_(&registry.counter(
          "store_snapshots_saved_total",
          "Warm states persisted to the snapshot directory")),
      rejected_mismatch_(&registry.counter(
          "store_snapshot_rejected_total",
          "Snapshots refused at load, by reason (never served)",
          {{"reason", "mismatch"}})),
      rejected_corrupt_(&registry.counter(
          "store_snapshot_rejected_total",
          "Snapshots refused at load, by reason (never served)",
          {{"reason", "corrupt"}})),
      rejected_truncated_(&registry.counter(
          "store_snapshot_rejected_total",
          "Snapshots refused at load, by reason (never served)",
          {{"reason", "truncated"}})),
      rejected_io_(&registry.counter(
          "store_snapshot_rejected_total",
          "Snapshots refused at load, by reason (never served)",
          {{"reason", "io"}})),
      load_us_(&registry.histogram("store_snapshot_load_us",
                                   "Snapshot read+verify+decode latency",
                                   store_latency_buckets())),
      save_us_(&registry.histogram("store_snapshot_save_us",
                                   "Snapshot encode+write+rename latency",
                                   store_latency_buckets())),
      warmup_us_(&registry.histogram("store_warmup_us",
                                     "Live warm-up latency on the miss path",
                                     store_latency_buckets())),
      entries_(&registry.gauge("store_entries",
                               "Warm states currently held in memory")) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("StateStore: capacity must be positive");
  }
}

std::string StateStore::snapshot_path(const std::string& id) const {
  const std::string dir =
      config_.snapshot_dir.empty() ? std::string(".") : config_.snapshot_dir;
  return dir + "/" + id + ".snap";
}

std::shared_ptr<const core::LcaKpRun> StateStore::get(const std::string& id,
                                                      const core::LcaKp& lca,
                                                      std::uint64_t tape_seed,
                                                      std::uint64_t epoch_id) {
  if (!valid_id(id)) {
    throw std::invalid_argument(
        "StateStore: instance id must be non-empty [A-Za-z0-9._-]: '" + id +
        "'");
  }
  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = by_id_.find(id); it != by_id_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      hits_->inc();
      return it->second->run;
    }
    if (const auto fit = inflight_.find(id); fit != inflight_.end()) {
      flight = fit->second;
      ++stats_.coalesced;
      coalesced_->inc();
    } else {
      flight = std::make_shared<Flight>();
      inflight_.emplace(id, flight);
      owner = true;
      ++stats_.misses;
      misses_->inc();
    }
  }

  if (!owner) {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&flight] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->result;
  }

  // Single-flight owner: hydrate outside the store lock so a slow warm-up
  // never blocks hits on other (warm) tenants.
  std::shared_ptr<const core::LcaKpRun> run;
  try {
    run = hydrate(id, lca, tape_seed, epoch_id);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(id);
    }
    {
      std::lock_guard<std::mutex> lock(flight->mutex);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // An invalidate() that raced this hydration wins: the waiters get the
    // result they were promised, but the LRU must not resurrect an entry
    // the caller already declared dead (e.g. across an epoch advance).
    if (!flight->invalidated) insert_and_evict(id, run);
    inflight_.erase(id);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->result = run;
    flight->done = true;
  }
  flight->cv.notify_all();
  return run;
}

std::shared_ptr<const core::LcaKpRun> StateStore::hydrate(
    const std::string& id, const core::LcaKp& lca, std::uint64_t tape_seed,
    std::uint64_t epoch_id) {
  const SnapshotFingerprint expected = fingerprint_of(lca, tape_seed, epoch_id);
  const bool persist = !config_.snapshot_dir.empty();
  std::error_code ec;
  // A missing file is the normal cold-start path, not a rejection; only an
  // *existing* snapshot that fails verification is worth an operator's alarm.
  if (persist && std::filesystem::exists(snapshot_path(id), ec) && !ec) {
    const auto load_start = Clock::now();
    try {
      auto run = std::make_shared<core::LcaKpRun>(
          read_snapshot(snapshot_path(id), &expected));
      load_us_->observe(elapsed_us(load_start));
      hydrations_snapshot_->inc();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.snapshot_hydrations;
      }
      return run;
    } catch (const SnapshotError& error) {
      // Count the rejection reason so operators see corruption and drift;
      // the snapshot is never served — fall through to live warm-up.
      count_rejection(error);
    }
  }

  const auto warmup_start = Clock::now();
  auto run = std::make_shared<core::LcaKpRun>(
      lca.run_warmup(tape_seed, config_.warmup_threads));
  warmup_us_->observe(elapsed_us(warmup_start));
  hydrations_warmup_->inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.live_warmups;
  }

  if (persist && config_.persist_after_warmup) {
    const auto save_start = Clock::now();
    try {
      write_snapshot(snapshot_path(id), expected, *run);
      save_us_->observe(elapsed_us(save_start));
      snapshots_saved_->inc();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.snapshots_saved;
    } catch (const SnapshotError&) {
      // Persistence is best-effort: a full disk must not fail the request
      // the warm state was just computed for.
      rejected_io_->inc();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.rejected_io;
    }
  }
  return run;
}

void StateStore::count_rejection(const SnapshotError& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dynamic_cast<const SnapshotMismatch*>(&error) != nullptr) {
    ++stats_.rejected_mismatch;
    rejected_mismatch_->inc();
  } else if (dynamic_cast<const SnapshotTruncated*>(&error) != nullptr) {
    ++stats_.rejected_truncated;
    rejected_truncated_->inc();
  } else if (dynamic_cast<const SnapshotCorrupt*>(&error) != nullptr) {
    ++stats_.rejected_corrupt;
    rejected_corrupt_->inc();
  } else {
    // SnapshotIoError: the file exists but could not be read.
    ++stats_.rejected_io;
    rejected_io_->inc();
  }
}

void StateStore::insert_and_evict(const std::string& id,
                                  std::shared_ptr<const core::LcaKpRun> run) {
  lru_.push_front(Entry{id, std::move(run)});
  by_id_[id] = lru_.begin();
  while (by_id_.size() > config_.capacity) {
    const auto& victim = lru_.back();
    by_id_.erase(victim.id);
    lru_.pop_back();
    ++stats_.evictions;
    evictions_->inc();
  }
  entries_->set(static_cast<double>(by_id_.size()));
}

bool StateStore::contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_id_.find(id) != by_id_.end();
}

std::size_t StateStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_id_.size();
}

std::vector<std::string> StateStore::warm_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(lru_.size());
  for (const auto& entry : lru_) ids.push_back(entry.id);
  return ids;
}

void StateStore::invalidate(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_id_.find(id); it != by_id_.end()) {
    lru_.erase(it->second);
    by_id_.erase(it);
    entries_->set(static_cast<double>(by_id_.size()));
  }
  if (const auto fit = inflight_.find(id); fit != inflight_.end()) {
    fit->second->invalidated = true;
  }
}

StateStoreStats StateStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace lcaknap::store
