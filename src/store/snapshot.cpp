#include "store/snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace lcaknap::store {

namespace {

// --- CRC-64/ECMA-182 ---------------------------------------------------------

constexpr std::uint64_t kCrc64Poly = 0xC96C5795D7870F42ULL;  // reflected

constexpr std::array<std::uint64_t, 256> make_crc64_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrc64Poly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc64Table = make_crc64_table();

// --- little-endian byte stream ----------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over an immutable buffer.  Every
/// overrun throws SnapshotTruncated; by the time the parser runs, the CRC
/// has already passed, so an overrun here means the *writer* produced a
/// short buffer — still never served.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void need(std::size_t count) const {
    if (bytes_.size() - pos_ < count) {
      throw SnapshotTruncated("snapshot: payload shorter than declared");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

void put_fingerprint(std::string& out, const SnapshotFingerprint& fp) {
  put_u64(out, fp.n);
  put_i64(out, fp.capacity);
  put_i64(out, fp.total_profit);
  put_i64(out, fp.total_weight);
  put_f64(out, fp.eps);
  put_u64(out, fp.seed);
  put_u32(out, fp.domain_bits);
  put_u32(out, fp.branching);
  put_f64(out, fp.tau);
  put_f64(out, fp.rho);
  put_f64(out, fp.beta);
  put_u64(out, fp.large_samples);
  put_u64(out, fp.quantile_samples);
  put_u64(out, fp.tape_seed);
  put_u32(out, fp.warmup_shards);
  put_u32(out, (fp.reproducible_quantiles ? 1u : 0u) |
                   (fp.paper_constants ? 2u : 0u));
  put_u64(out, fp.epoch_id);
}

SnapshotFingerprint get_fingerprint(ByteReader& in) {
  SnapshotFingerprint fp;
  fp.n = in.u64();
  fp.capacity = in.i64();
  fp.total_profit = in.i64();
  fp.total_weight = in.i64();
  fp.eps = in.f64();
  fp.seed = in.u64();
  fp.domain_bits = in.u32();
  fp.branching = in.u32();
  fp.tau = in.f64();
  fp.rho = in.f64();
  fp.beta = in.f64();
  fp.large_samples = in.u64();
  fp.quantile_samples = in.u64();
  fp.tape_seed = in.u64();
  fp.warmup_shards = in.u32();
  const std::uint32_t flags = in.u32();
  fp.reproducible_quantiles = (flags & 1u) != 0;
  fp.paper_constants = (flags & 2u) != 0;
  if ((flags & ~3u) != 0) {
    throw SnapshotCorrupt("snapshot: unknown fingerprint flags");
  }
  fp.epoch_id = in.u64();
  return fp;
}

/// magic + version + total_size: the prefix needed before anything else can
/// be trusted.
constexpr std::size_t kHeaderBytes = 8 + 4 + 8;
constexpr std::size_t kTrailerBytes = 8;  // CRC64

[[nodiscard]] bool bits_equal(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

bool SnapshotFingerprint::equals(const SnapshotFingerprint& other) const noexcept {
  return n == other.n && capacity == other.capacity &&
         total_profit == other.total_profit &&
         total_weight == other.total_weight && bits_equal(eps, other.eps) &&
         seed == other.seed && domain_bits == other.domain_bits &&
         branching == other.branching && bits_equal(tau, other.tau) &&
         bits_equal(rho, other.rho) && bits_equal(beta, other.beta) &&
         large_samples == other.large_samples &&
         quantile_samples == other.quantile_samples &&
         tape_seed == other.tape_seed && warmup_shards == other.warmup_shards &&
         reproducible_quantiles == other.reproducible_quantiles &&
         paper_constants == other.paper_constants && epoch_id == other.epoch_id;
}

SnapshotFingerprint fingerprint_of(const core::LcaKp& lca,
                                   std::uint64_t tape_seed,
                                   std::uint64_t epoch_id) {
  const auto& access = lca.access();
  const auto& config = lca.config();
  const auto& params = lca.params();
  SnapshotFingerprint fp;
  fp.n = access.size();
  fp.capacity = access.capacity();
  fp.total_profit = access.total_profit();
  fp.total_weight = access.total_weight();
  fp.eps = config.eps;
  fp.seed = config.seed;
  fp.domain_bits = static_cast<std::uint32_t>(config.domain_bits);
  fp.branching = static_cast<std::uint32_t>(config.branching);
  fp.tau = params.tau;
  fp.rho = params.rho;
  fp.beta = params.beta;
  fp.large_samples = params.large_samples;
  fp.quantile_samples = params.quantile_samples;
  fp.tape_seed = tape_seed;
  fp.warmup_shards = static_cast<std::uint32_t>(core::LcaKp::kWarmupShards);
  fp.reproducible_quantiles = config.reproducible_quantiles;
  fp.paper_constants = config.paper_constants;
  fp.epoch_id = epoch_id;
  return fp;
}

void encode_fingerprint(std::string& out, const SnapshotFingerprint& fp) {
  const std::size_t before = out.size();
  put_fingerprint(out, fp);
  // The block size is part of the on-disk contract (the certificate log
  // header slices exactly kFingerprintBytes); drift here is a format bug.
  if (out.size() - before != kFingerprintBytes) {
    throw SnapshotCorrupt("snapshot: fingerprint encoding size drifted");
  }
}

SnapshotFingerprint decode_fingerprint(std::string_view bytes) {
  if (bytes.size() < kFingerprintBytes) {
    throw SnapshotTruncated("snapshot: fingerprint block too short");
  }
  ByteReader in(bytes);
  const SnapshotFingerprint fp = get_fingerprint(in);
  if (in.remaining() != 0) {
    throw SnapshotCorrupt("snapshot: trailing bytes after fingerprint block");
  }
  return fp;
}

std::uint64_t crc64(std::string_view bytes) noexcept {
  std::uint64_t crc = ~0ULL;
  for (const char c : bytes) {
    crc = kCrc64Table[(crc ^ static_cast<std::uint8_t>(c)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::string encode_snapshot(const SnapshotFingerprint& fingerprint,
                            const core::LcaKpRun& run) {
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(out, kSnapshotVersion);
  const std::size_t size_field_at = out.size();
  put_u64(out, 0);  // total_size backpatched below
  put_fingerprint(out, fingerprint);

  // Payload.  The large-item set is written sorted so equal states always
  // encode to equal bytes (the in-memory set iterates in hash order).
  std::vector<std::uint64_t> sorted(run.index_large.begin(),
                                    run.index_large.end());
  std::sort(sorted.begin(), sorted.end());
  put_u64(out, sorted.size());
  for (const auto index : sorted) put_u64(out, index);
  put_i64(out, run.e_small_grid);
  put_u8(out, run.singleton ? 1 : 0);
  put_u8(out, run.degenerate ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(run.thresholds_grid.size()));
  for (const auto g : run.thresholds_grid) put_i64(out, g);
  for (const auto e : run.thresholds) put_f64(out, e);
  put_f64(out, run.large_mass);
  put_f64(out, run.q);
  put_u32(out, static_cast<std::uint32_t>(run.t));
  put_u64(out, run.samples_used);
  put_u64(out, run.tilde_size);

  // Backpatch the total size, then seal with the CRC over everything so far.
  const std::uint64_t total = out.size() + kTrailerBytes;
  for (int i = 0; i < 8; ++i) {
    out[size_field_at + static_cast<std::size_t>(i)] =
        static_cast<char>(total >> (8 * i));
  }
  put_u64(out, crc64(out));
  return out;
}

core::LcaKpRun decode_snapshot(std::string_view bytes,
                               const SnapshotFingerprint* expected,
                               SnapshotFingerprint* actual) {
  // 1. Shape: enough bytes for the self-describing header, and exactly as
  //    many bytes as that header promises.
  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    throw SnapshotTruncated("snapshot: shorter than any valid header");
  }
  {
    ByteReader head(bytes.substr(8 + 4, 8));
    const std::uint64_t declared = head.u64();
    if (bytes.size() < declared) {
      throw SnapshotTruncated("snapshot: file shorter than declared size");
    }
    if (bytes.size() > declared) {
      throw SnapshotCorrupt("snapshot: trailing bytes beyond declared size");
    }
  }
  // 2. Integrity: the trailing CRC covers every preceding byte, so from here
  //    on every field is exactly what the writer produced.
  {
    ByteReader tail(bytes.substr(bytes.size() - kTrailerBytes));
    const std::uint64_t stored = tail.u64();
    const std::uint64_t computed =
        crc64(bytes.substr(0, bytes.size() - kTrailerBytes));
    if (stored != computed) {
      throw SnapshotCorrupt("snapshot: CRC64 mismatch");
    }
  }
  ByteReader in(bytes.substr(0, bytes.size() - kTrailerBytes));
  // 3. Format identity.
  for (const char expected_char : kSnapshotMagic) {
    if (static_cast<char>(in.u8()) != expected_char) {
      throw SnapshotCorrupt("snapshot: bad magic");
    }
  }
  if (const auto version = in.u32(); version != kSnapshotVersion) {
    throw SnapshotCorrupt("snapshot: unsupported format version " +
                          std::to_string(version));
  }
  (void)in.u64();  // total_size, already validated
  // 4. Fingerprint.
  const SnapshotFingerprint fp = get_fingerprint(in);
  if (actual != nullptr) *actual = fp;
  if (expected != nullptr && !fp.equals(*expected)) {
    throw SnapshotMismatch(
        "snapshot: fingerprint mismatch (snapshot was taken of a different "
        "instance, config, or warm-up tape)");
  }
  // 5. Payload.  Element counts are sanity-bounded by the remaining bytes
  //    before any allocation, so a hostile size field cannot balloon memory.
  core::LcaKpRun run;
  const std::uint64_t large_count = in.u64();
  if (large_count > in.remaining() / 8) {
    throw SnapshotCorrupt("snapshot: large-item count exceeds payload");
  }
  run.index_large.reserve(static_cast<std::size_t>(large_count));
  std::uint64_t previous = 0;
  for (std::uint64_t k = 0; k < large_count; ++k) {
    const std::uint64_t index = in.u64();
    if (k > 0 && index <= previous) {
      throw SnapshotCorrupt("snapshot: large-item indices not canonical");
    }
    previous = index;
    run.index_large.insert(static_cast<std::size_t>(index));
  }
  run.e_small_grid = in.i64();
  run.singleton = in.u8() != 0;
  run.degenerate = in.u8() != 0;
  const std::uint32_t threshold_count = in.u32();
  if (threshold_count > in.remaining() / 16) {
    throw SnapshotCorrupt("snapshot: threshold count exceeds payload");
  }
  run.thresholds_grid.reserve(threshold_count);
  for (std::uint32_t k = 0; k < threshold_count; ++k) {
    run.thresholds_grid.push_back(in.i64());
  }
  run.thresholds.reserve(threshold_count);
  for (std::uint32_t k = 0; k < threshold_count; ++k) {
    run.thresholds.push_back(in.f64());
  }
  run.large_mass = in.f64();
  run.q = in.f64();
  run.t = static_cast<int>(in.u32());
  run.samples_used = in.u64();
  run.tilde_size = in.u64();
  if (in.remaining() != 0) {
    throw SnapshotCorrupt("snapshot: unparsed bytes before trailer");
  }
  return run;
}

void write_snapshot(const std::string& path,
                    const SnapshotFingerprint& fingerprint,
                    const core::LcaKpRun& run) {
  const std::string encoded = encode_snapshot(fingerprint, run);
  const std::string temp = path + ".tmp";
  {
    std::ofstream os(temp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SnapshotIoError("snapshot: cannot open temp file " + temp);
    }
    os.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::remove(temp.c_str());
      throw SnapshotIoError("snapshot: short write to " + temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::remove(temp.c_str());
    throw SnapshotIoError("snapshot: rename " + temp + " -> " + path +
                          " failed: " + ec.message());
  }
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw SnapshotIoError("snapshot: cannot open " + path);
  }
  std::string bytes;
  is.seekg(0, std::ios::end);
  const auto size = is.tellg();
  if (size < 0) throw SnapshotIoError("snapshot: cannot stat " + path);
  bytes.resize(static_cast<std::size_t>(size));
  is.seekg(0, std::ios::beg);
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!is.good() && !is.eof()) {
    throw SnapshotIoError("snapshot: read error on " + path);
  }
  return bytes;
}

}  // namespace

core::LcaKpRun read_snapshot(const std::string& path,
                             const SnapshotFingerprint* expected,
                             SnapshotFingerprint* actual) {
  return decode_snapshot(read_file(path), expected, actual);
}

SnapshotFingerprint read_snapshot_fingerprint(const std::string& path) {
  SnapshotFingerprint fp;
  (void)decode_snapshot(read_file(path), nullptr, &fp);
  return fp;
}

}  // namespace lcaknap::store
