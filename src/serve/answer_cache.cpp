#include "serve/answer_cache.h"

#include <algorithm>

#include "util/rng.h"

namespace lcaknap::serve {
namespace {

std::size_t round_up_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

AnswerCache::AnswerCache(const AnswerCacheConfig& config,
                         metrics::Registry& registry)
    : config_(config),
      hits_total_(&registry.counter(
          "serve_cache_hits_total", "Answer-cache hits in the serving engine")),
      misses_total_(&registry.counter(
          "serve_cache_misses_total", "Answer-cache misses in the serving engine")),
      evictions_total_(&registry.counter(
          "serve_cache_evictions_total", "Answer-cache LRU evictions")),
      paranoia_checks_total_(&registry.counter(
          "serve_cache_paranoia_checks_total",
          "Cache hits re-evaluated by the paranoia consistency check")),
      paranoia_violations_total_(&registry.counter(
          "serve_cache_paranoia_violations_total",
          "Paranoia re-evaluations that disagreed with the cached answer "
          "(must stay 0; Definition 2.3 as an SLO)")),
      invalidations_total_(&registry.counter(
          "serve_cache_invalidations_total",
          "Whole-cache invalidation events (generation bumps, e.g. epoch "
          "advances); O(1) each, stale entries die lazily")) {
  std::size_t n_shards =
      round_up_pow2(std::max<std::size_t>(1, config.shards));
  if (config.capacity > 0) {
    // Every shard must hold at least one entry or it could never cache.
    while (n_shards > 1 && n_shards > config.capacity) n_shards >>= 1;
  }
  shards_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Distribute the capacity; earlier shards absorb the remainder.
    shard->capacity = config.capacity / n_shards +
                      (s < config.capacity % n_shards ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

AnswerCache::Shard& AnswerCache::shard_for(std::size_t item) noexcept {
  // shards_.size() is a power of two; mix so adjacent indices spread.
  const auto h = util::mix64(static_cast<std::uint64_t>(item));
  return *shards_[h & (shards_.size() - 1)];
}

std::optional<AnswerCache::Hit> AnswerCache::get(std::size_t item) {
  if (config_.capacity == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_total_->inc();
    return std::nullopt;
  }
  Shard& shard = shard_for(item);
  const std::uint64_t current = generation_.load(std::memory_order_acquire);
  Entry entry;
  {
    const std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(item);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      misses_total_->inc();
      return std::nullopt;
    }
    if (it->second->second.generation != current) {
      // Stale epoch: the entry answers a question the instance no longer
      // asks.  Drop it and report a miss — never a stale answer.
      shard.lru.erase(it->second);
      shard.index.erase(it);
      misses_.fetch_add(1, std::memory_order_relaxed);
      misses_total_->inc();
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    entry = it->second->second;
  }
  const auto hit_no = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  hits_total_->inc();
  Hit hit;
  hit.answer = entry.answer;
  hit.paranoia_due =
      config_.paranoia_every > 0 && hit_no % config_.paranoia_every == 0;
  hit.has_witness = entry.has_witness;
  hit.large = entry.large;
  hit.profit = entry.profit;
  hit.weight = entry.weight;
  hit.generation = entry.generation;
  return hit;
}

void AnswerCache::put(std::size_t item, const Entry& entry) {
  if (config_.capacity == 0) return;
  if (entry.generation != generation_.load(std::memory_order_acquire)) {
    return;  // a writer from a superseded epoch must not poison the cache
  }
  Shard& shard = shard_for(item);
  bool evicted = false;
  {
    const std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(item);
    if (it != shard.index.end()) {
      it->second->second = entry;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.capacity == 0) return;  // degenerate split: shard holds nothing
    if (shard.lru.size() >= shard.capacity) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evicted = true;
    }
    shard.lru.emplace_front(item, entry);
    shard.index.emplace(item, shard.lru.begin());
  }
  if (evicted) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_total_->inc();
  }
}

void AnswerCache::get_batch(std::span<const std::size_t> items,
                            std::vector<std::optional<Hit>>& out) {
  out.assign(items.size(), std::nullopt);
  if (items.empty()) return;
  if (config_.capacity == 0) {
    misses_.fetch_add(items.size(), std::memory_order_relaxed);
    misses_total_->inc(items.size());
    return;
  }
  // Group lanes by shard (stable sort keeps same-shard lanes in request
  // order), then visit each shard's group under one lock acquisition.
  std::vector<std::pair<std::size_t, std::size_t>> by_shard;  // (shard, lane)
  by_shard.reserve(items.size());
  const std::size_t mask = shards_.size() - 1;
  for (std::size_t l = 0; l < items.size(); ++l) {
    by_shard.emplace_back(util::mix64(static_cast<std::uint64_t>(items[l])) & mask, l);
  }
  std::stable_sort(by_shard.begin(), by_shard.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  // Hit lanes in visit order; the entry copy is taken under the lock, the
  // hit numbers are claimed afterwards in one block.
  std::vector<std::pair<std::size_t, Entry>> hit_lanes;
  hit_lanes.reserve(items.size());
  std::size_t miss_count = 0;
  const std::uint64_t current = generation_.load(std::memory_order_acquire);

  std::size_t g = 0;
  while (g < by_shard.size()) {
    const std::size_t shard_id = by_shard[g].first;
    Shard& shard = *shards_[shard_id];
    const std::lock_guard lock(shard.mutex);
    for (; g < by_shard.size() && by_shard[g].first == shard_id; ++g) {
      const std::size_t lane = by_shard[g].second;
      const auto it = shard.index.find(items[lane]);
      if (it == shard.index.end()) {
        ++miss_count;
        continue;
      }
      if (it->second->second.generation != current) {
        shard.lru.erase(it->second);
        shard.index.erase(it);
        ++miss_count;
        continue;
      }
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hit_lanes.emplace_back(lane, it->second->second);
    }
  }

  if (miss_count > 0) {
    misses_.fetch_add(miss_count, std::memory_order_relaxed);
    misses_total_->inc(miss_count);
  }
  if (!hit_lanes.empty()) {
    // Claim hit numbers base+1 .. base+k as one block: the batch produces
    // exactly the paranoia-due count the per-request path would have.
    const auto base = hits_.fetch_add(hit_lanes.size(), std::memory_order_relaxed);
    hits_total_->inc(hit_lanes.size());
    for (std::size_t j = 0; j < hit_lanes.size(); ++j) {
      const auto hit_no = base + j + 1;
      const auto& [lane, entry] = hit_lanes[j];
      Hit hit;
      hit.answer = entry.answer;
      hit.paranoia_due = config_.paranoia_every > 0 &&
                         hit_no % config_.paranoia_every == 0;
      hit.has_witness = entry.has_witness;
      hit.large = entry.large;
      hit.profit = entry.profit;
      hit.weight = entry.weight;
      hit.generation = entry.generation;
      out[lane] = hit;
    }
  }
}

void AnswerCache::put_batch(std::span<const PutItem> puts) {
  if (config_.capacity == 0 || puts.empty()) return;
  const std::uint64_t current = generation_.load(std::memory_order_acquire);
  std::vector<std::pair<std::size_t, std::size_t>> by_shard;  // (shard, idx)
  by_shard.reserve(puts.size());
  const std::size_t mask = shards_.size() - 1;
  for (std::size_t i = 0; i < puts.size(); ++i) {
    if (puts[i].entry.generation != current) continue;  // superseded epoch
    by_shard.emplace_back(
        util::mix64(static_cast<std::uint64_t>(puts[i].item)) & mask, i);
  }
  if (by_shard.empty()) return;
  std::stable_sort(by_shard.begin(), by_shard.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::size_t evicted = 0;
  std::size_t g = 0;
  while (g < by_shard.size()) {
    const std::size_t shard_id = by_shard[g].first;
    Shard& shard = *shards_[shard_id];
    const std::lock_guard lock(shard.mutex);
    for (; g < by_shard.size() && by_shard[g].first == shard_id; ++g) {
      const PutItem& p = puts[by_shard[g].second];
      const auto it = shard.index.find(p.item);
      if (it != shard.index.end()) {
        it->second->second = p.entry;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        continue;
      }
      if (shard.capacity == 0) continue;
      if (shard.lru.size() >= shard.capacity) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        ++evicted;
      }
      shard.lru.emplace_front(p.item, p.entry);
      shard.index.emplace(p.item, shard.lru.begin());
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    evictions_total_->inc(evicted);
  }
}

void AnswerCache::record_paranoia(bool consistent) {
  paranoia_checks_.fetch_add(1, std::memory_order_relaxed);
  paranoia_checks_total_->inc();
  if (!consistent) {
    paranoia_violations_.fetch_add(1, std::memory_order_relaxed);
    paranoia_violations_total_->inc();
  }
}

std::uint64_t AnswerCache::hits() const noexcept {
  return hits_.load(std::memory_order_relaxed);
}
std::uint64_t AnswerCache::misses() const noexcept {
  return misses_.load(std::memory_order_relaxed);
}
std::uint64_t AnswerCache::evictions() const noexcept {
  return evictions_.load(std::memory_order_relaxed);
}
std::uint64_t AnswerCache::paranoia_checks() const noexcept {
  return paranoia_checks_.load(std::memory_order_relaxed);
}
std::uint64_t AnswerCache::paranoia_violations() const noexcept {
  return paranoia_violations_.load(std::memory_order_relaxed);
}

bool AnswerCache::bump_generation(std::uint64_t generation) {
  std::uint64_t current = generation_.load(std::memory_order_relaxed);
  while (current < generation) {
    if (generation_.compare_exchange_weak(current, generation,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      invalidations_total_->inc();
      return true;
    }
  }
  return false;
}

std::uint64_t AnswerCache::generation() const noexcept {
  return generation_.load(std::memory_order_acquire);
}

std::uint64_t AnswerCache::invalidations() const noexcept {
  return invalidations_.load(std::memory_order_relaxed);
}

std::size_t AnswerCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace lcaknap::serve
