#ifndef LCAKNAP_SERVE_ENGINE_H
#define LCAKNAP_SERVE_ENGINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cert/cert_log.h"
#include "core/batch_eval.h"
#include "core/lca_kp.h"
#include "metrics/metrics.h"
#include "serve/answer_cache.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "util/thread_pool.h"
#include "util/virtual_clock.h"

/// \file engine.h
/// The concurrent serving engine: queue → batcher → worker pool → cache.
///
/// `core/serving_sim` *simulates* a fleet (latency drawn from an RPC model,
/// queries executed one at a time); this engine is the real request path the
/// paper's model promises is possible: per-query work independent of n and
/// of the query interleaving.  One warm-up pipeline execution happens at
/// construction (the Theorem 4.1 one-time cost); afterwards every admitted
/// request is answered from the shared `LcaKpRun` — a read-only membership
/// rule all workers consult concurrently, which is exactly the shared-seed
/// replica of Definition 2.3.
///
/// Request lifecycle:
///   submit() ── admission ──> RequestQueue (bounded; full ⇒ kOverloaded)
///            ── dispatcher ─> Batcher (group by item; linger/size close)
///            ── ThreadPool ─> execute_batch: AnswerCache get → on miss one
///                             `answer_from` evaluation (one oracle read) →
///                             cache put → fulfil every request's future
/// Deadlines are checked at dispatch and again at evaluation; expired
/// requests are shed with kDeadlineExceeded.  `drain()` closes admission,
/// flushes the batcher, and completes every in-flight request — an admitted
/// request is never lost.
///
/// Metrics (see docs/OBSERVABILITY.md): `serve_requests_total{outcome}`,
/// `serve_batch_size`, `serve_request_latency_us`, `serve_queue_depth`,
/// `warmup_duration_us`, `warmup_threads`, `serve_epoch`, the
/// `serve_cache_*` families owned by `AnswerCache`, and — with `certify` on
/// — the `cert_*` writer families owned by `cert::CertLog`.
///
/// **Epochs (dynamic instances, src/dyn).**  The warm state, the batch
/// evaluator built over it, and the certificate log it certifies against
/// form one immutable *epoch snapshot*.  Workers capture the snapshot once
/// per dispatch group (a `shared_ptr` load; readers never block), so an
/// `advance_epoch` concurrent with traffic is linearizable per request: a
/// request evaluates entirely under epoch N or entirely under N+1, never a
/// mix, and `Response::epoch_id` attributes which.  The answer cache is
/// epoch-scoped by generation (= epoch id): an advance bumps the generation
/// in O(1), a worker still finishing epoch-N work cannot poison the N+1
/// cache, and a stale-generation entry is dropped as a miss — a stale-epoch
/// answer is never served from the cache.

namespace lcaknap::serve {

struct EngineConfig {
  /// Evaluation workers (the engine owns its `util::ThreadPool`).
  std::size_t workers = 4;
  /// Admission bound: requests beyond this backlog are rejected kOverloaded.
  std::size_t queue_capacity = 1024;
  BatcherConfig batcher;
  AnswerCacheConfig cache;
  /// Deadline applied by `submit(item)`; 0 = no deadline (negative values
  /// are honoured as already-expired, which tests use to force shedding).
  std::chrono::microseconds default_deadline{0};
  /// The clock request deadlines are checked against (submission, dispatch,
  /// and evaluation all read `clock->now_us()`).  Null means the process
  /// `util::system_clock()`.  Injecting a `util::VirtualClock` makes
  /// deadline shedding deterministic for wire-level timeout tests: a
  /// request expires exactly when the test advances the clock past its
  /// deadline, never because a CI machine stalled.  The clock must outlive
  /// the engine.
  util::Clock* clock = nullptr;
  /// Fresh-randomness tape for the constructor's warm-up pipeline run.
  std::uint64_t warmup_tape_seed = 7;
  /// Threads for the constructor's sharded warm-up (`LcaKp::run_warmup`).
  /// 0 = inherit `LcaKpConfig::warmup_threads` (whose 0 in turn means
  /// hardware concurrency).  Any value yields the same `run()` — the warm-up
  /// draws from per-shard PRF substreams keyed by `warmup_tape_seed`, so
  /// thread count never changes served answers.
  std::size_t warmup_threads = 0;
  /// Graceful degradation: when an evaluation fails because the oracle is
  /// unavailable (retries exhausted, retry budget empty, or circuit breaker
  /// open), answer from the fallback chain instead of reporting kError.
  /// The chain is (1) the AnswerCache — already consulted first, and
  /// authoritative when it hits — then (2) the O(1) warm-state rule:
  /// membership in the run's large-item set, "no" for the small tail (the
  /// trivial-LCA floor of Definition 2.4 applied to unknown items).  The
  /// outcome is labelled kDegraded and the answer is never cached, so a
  /// recovered oracle immediately restores full-quality answers.
  bool degrade = false;
  /// Warm-from-snapshot path: when set, the engine adopts this already-warm
  /// state instead of executing the constructor's warm-up pipeline — the
  /// restart path of docs/PERSISTENCE.md (typically a `store::StateStore`
  /// hydration or `store::read_snapshot`).  The state must come from the
  /// same (instance, shared seed, `warmup_tape_seed`) this engine serves;
  /// snapshot fingerprints enforce that at load time and `core::run_digest`
  /// equality pins served answers byte-identical to a live warm-up (the
  /// round-trip tests and bench_snapshot check both).  The gauge
  /// `warmup_from_snapshot` records which path constructed the engine.
  std::shared_ptr<const core::LcaKpRun> warm_state;
  /// Certified answers (docs/CERTIFICATES.md): when true, every kOk answer
  /// the engine evaluates emits one CRC-sealed `cert::CertRecord` — the item
  /// contents as witnessed, which membership branch fired, the active EPS
  /// threshold index, and the answer — into an append-only, atomically
  /// rotated log under `cert_dir`.  Cache hits certify from the witness
  /// stored in the `AnswerCache` entry, so certification adds zero oracle
  /// reads.  Degraded answers are never certified (they may be below LCA
  /// quality and carry no witness).  `lcaknap verify-log` replays the log
  /// against a warm-state snapshot offline.
  bool certify = false;
  /// Directory for certificate log segments; must exist when `certify` is
  /// set (the constructor throws `cert::CertIoError` otherwise).
  std::string cert_dir;
  /// Records per certificate segment before atomic rotation; 0 = library
  /// default (`cert::CertLogConfig`).
  std::uint64_t cert_segment_records = 0;
  /// Vectorized batch answer path (core::BatchEval): workers evaluate the
  /// cache misses of a whole dispatch group through struct-of-arrays
  /// scratch buffers and the best available SIMD kernel, instead of one
  /// `answer_with_witness` call per batch.  Answers, witnesses, cache
  /// counters, certificates, and outcome accounting are byte-identical to
  /// the per-request path (the batch kernels are pinned to the scalar
  /// reference); `false` restores the per-request evaluation, which benches
  /// use as the baseline.  Observability: `serve_batch_eval_us` histogram +
  /// `batch_eval_kernel` gauge.
  bool batch_eval = true;
};

/// Point-in-time readout of the engine's own counters plus its cache's.
/// Conservation law (post-drain): submitted == ok + overloaded +
/// deadline_exceeded + degraded + errors.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t degraded = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  ///< requests that went through batches
  std::uint64_t batch_eval_groups = 0;  ///< dispatch groups answered by BatchEval
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_invalidations = 0;  ///< generation bumps (epoch advances)
  std::uint64_t paranoia_checks = 0;
  std::uint64_t paranoia_violations = 0;
  std::uint64_t epoch = 0;          ///< current instance epoch (0 = static)
  // Certificate counters aggregate across every epoch's log (one log
  // directory per epoch; see advance_epoch).
  std::uint64_t cert_records = 0;   ///< certificate records written
  std::uint64_t cert_skipped = 0;   ///< kOk answers served uncertified
  std::uint64_t cert_bytes = 0;     ///< certificate log bytes written
  std::uint64_t cert_segments = 0;  ///< certificate segments sealed
};

class ServeEngine {
 public:
  /// Executes the warm-up pipeline run and starts the dispatcher + workers.
  /// `lca` (and the access object behind it) must outlive the engine.
  ServeEngine(const core::LcaKp& lca, const EngineConfig& config,
              metrics::Registry& registry = metrics::global_registry());

  /// Drains (all outstanding futures complete) and joins all threads.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Submits a membership query; the future always completes (with an
  /// answer, or an admission/deadline/error outcome).  Applies
  /// `config().default_deadline` when nonzero.
  [[nodiscard]] std::future<Response> submit(std::size_t item);
  /// Same, with an explicit per-request deadline (from now).
  [[nodiscard]] std::future<Response> submit(std::size_t item,
                                             std::chrono::microseconds deadline);
  /// Non-blocking completion API: `callback` is invoked exactly once with
  /// the response, from whichever engine thread finishes the request (the
  /// submitting thread itself for admission rejections).  The conservation
  /// law and every outcome counter treat this path identically to the
  /// future path.  The callback must not block or throw; the network
  /// front-end (src/net/) uses it to marshal completions onto connection
  /// write queues without parking a thread per request.
  void submit(std::size_t item, CompletionCallback callback);
  /// Same, with an explicit per-request deadline (from now).
  void submit(std::size_t item, std::chrono::microseconds deadline,
              CompletionCallback callback);
  /// Convenience: submit and block for the response.
  [[nodiscard]] Response submit_wait(std::size_t item);

  /// Stops admission, completes everything already admitted, and joins the
  /// dispatcher.  Subsequent submits are rejected kOverloaded.  Idempotent.
  void drain();

  /// Epoch advance (dynamic instances, src/dyn): atomically replaces the
  /// warm state every subsequent evaluation answers from.  `epoch_id` must
  /// be strictly greater than the current epoch (throws
  /// `std::invalid_argument` otherwise); `lca` is the algorithm over the
  /// *new* instance and `run` its warm state (typically
  /// `dyn::EpochedState::advance`'s output); `keepalive` pins whatever owns
  /// `lca` (instance + oracle access) for as long as any in-flight worker
  /// may still hold the snapshot.  Effects, in order: the answer-cache
  /// generation is bumped to `epoch_id` (O(1); epoch-N entries die lazily,
  /// epoch-N puts are dropped), a fresh `core::BatchEval` is built over the
  /// new run, and — with `certify` on — a new certificate log opens under
  /// `cert_dir/epoch-<id>/` with the epoch-stamped fingerprint, the previous
  /// epoch's log staying owned (and sealed at drain) so no record is lost.
  /// In-flight requests that captured the old snapshot finish under it and
  /// report the old `Response::epoch_id`; requests dispatched afterwards see
  /// only the new epoch.  Thread-safe against submit/worker traffic;
  /// concurrent advance calls serialize.
  void advance_epoch(std::uint64_t epoch_id, const core::LcaKp& lca,
                     std::shared_ptr<const core::LcaKpRun> run,
                     std::shared_ptr<const void> keepalive = nullptr);
  /// The current instance epoch (0 until the first advance).
  [[nodiscard]] std::uint64_t epoch() const;

  [[nodiscard]] EngineStats stats() const;
  /// The active batch-eval kernel; kScalar when the batch path is disabled.
  [[nodiscard]] core::BatchKernel batch_kernel() const;
  /// The shared membership rule every worker answers from (the *current*
  /// epoch's).  The reference stays valid for the engine's lifetime — past
  /// epochs are retained, not freed — but is a point-in-time read under
  /// concurrent advances.
  [[nodiscard]] const core::LcaKpRun& run() const;
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const AnswerCache& cache() const noexcept { return cache_; }
  /// The current epoch's certificate log writer, or nullptr when `certify`
  /// is off.
  [[nodiscard]] const cert::CertLog* cert_log() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

 private:
  /// Everything an evaluation consults, frozen per epoch.  Workers capture
  /// one `shared_ptr<const Epoch>` per dispatch group and never re-read it
  /// mid-request, so an advance can never split a request across epochs.
  struct Epoch {
    std::uint64_t epoch_id = 0;
    const core::LcaKp* lca = nullptr;
    std::shared_ptr<const core::LcaKpRun> run;
    /// SoA batch evaluator over `run` (null when `batch_eval` is off).
    std::shared_ptr<core::BatchEval> batch_eval;
    /// This epoch's certificate log (null unless `certify`); kept alive —
    /// and sealed at drain — even after the epoch is superseded.
    std::shared_ptr<cert::CertLog> cert_log;
    /// Index of the active small-item threshold in `run`'s EPS payload.
    std::int32_t cert_threshold_idx = -1;
    /// Pins the objects `lca` points into (instance, oracle access).
    std::shared_ptr<const void> keepalive;
  };

  /// Absolute deadline instant on `clock_` for a relative `deadline`;
  /// negative values land at "now" (already expired).
  [[nodiscard]] std::uint64_t deadline_from(
      std::chrono::microseconds deadline) const;
  [[nodiscard]] std::future<Response> submit_at(std::size_t item,
                                                std::uint64_t deadline_us);
  void submit_cb(std::size_t item, std::uint64_t deadline_us,
                 CompletionCallback callback);
  /// Common admission path; completes the request kOverloaded when the
  /// bounded queue refuses it.
  void admit(Request&& request);
  void dispatch_loop();
  /// Hands `ready` to the worker pool, grouping several batches per pool
  /// task when the backlog is deep (amortizes per-task overhead) while
  /// keeping one-batch tasks when it is shallow (preserves parallelism).
  void dispatch_ready(std::vector<Batch>& ready);
  void execute_batch(Batch batch, const std::shared_ptr<const Epoch>& snap);
  /// The vectorized answer path: evaluates a whole dispatch group's cache
  /// misses through `core::BatchEval` SoA scratch (one `get_batch`, one
  /// gather+classify, one `put_batch`), then finishes every request with
  /// the same outcome semantics as `execute_batch`.
  void execute_batch_group(std::vector<Batch>& group,
                           const std::shared_ptr<const Epoch>& snap);
  void finish(Request& request, const Response& response);
  /// The O(1) degraded-mode membership rule: no oracle access, answers from
  /// the snapshot's warm run state alone.
  [[nodiscard]] static bool degraded_answer(const Epoch& snap,
                                            std::size_t item) noexcept;
  /// Appends one certificate record for an evaluated kOk answer (no-op
  /// unless the snapshot certifies); the witness comes from the evaluation
  /// or the cache entry, never from an extra oracle read.
  static void certify_answer(const Epoch& snap, std::size_t item, bool large,
                             std::int64_t profit, std::int64_t weight,
                             bool answer) noexcept;
  /// The current epoch snapshot (one mutex-guarded shared_ptr copy).
  [[nodiscard]] std::shared_ptr<const Epoch> snapshot() const;
  /// Builds the per-epoch derived state (BatchEval, certificate log) over an
  /// adopted warm run; shared by the constructor and advance_epoch.
  [[nodiscard]] std::shared_ptr<const Epoch> make_epoch(
      std::uint64_t epoch_id, const core::LcaKp& lca,
      std::shared_ptr<const core::LcaKpRun> run,
      std::shared_ptr<const void> keepalive, const std::string& cert_dir,
      metrics::Registry& registry);

  const core::LcaKp* lca_;
  EngineConfig config_;
  util::Clock* clock_;
  metrics::Registry* registry_;

  metrics::Counter* requests_ok_;
  metrics::Counter* requests_overloaded_;
  metrics::Counter* requests_deadline_;
  metrics::Counter* requests_degraded_;
  metrics::Counter* requests_error_;
  metrics::Histogram* batch_size_;
  metrics::Histogram* latency_us_;
  metrics::Gauge* queue_depth_gauge_;
  metrics::Histogram* batch_eval_us_ = nullptr;
  metrics::Gauge* batch_eval_kernel_gauge_ = nullptr;
  metrics::Gauge* epoch_gauge_ = nullptr;

  /// Serializes advance_epoch calls (epoch construction is slow: BatchEval
  /// rebuild + certificate-log open); never held by the request path.
  std::mutex advance_mutex_;
  /// Guards `epochs_`; held for a shared_ptr copy on capture, never across
  /// an evaluation.
  mutable std::mutex epoch_mutex_;
  /// Every epoch this engine has served, oldest first; back() is current.
  /// Past epochs are retained so `run()` references stay valid and every
  /// epoch's certificate log is sealed at drain.
  std::vector<std::shared_ptr<const Epoch>> epochs_;

  RequestQueue queue_;
  AnswerCache cache_;
  util::ThreadPool pool_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> batch_eval_groups_{0};
  std::once_flag drain_once_;
  std::thread dispatcher_;
};

/// Bucket bounds for `serve_request_latency_us` (end-to-end spans: admission
/// to completion; sub-microsecond cache hits up to long-linger batches).
[[nodiscard]] std::vector<double> serve_latency_buckets();
/// Bucket bounds for `serve_batch_size` (1 .. max fan-in, powers of two).
[[nodiscard]] std::vector<double> serve_batch_size_buckets();

}  // namespace lcaknap::serve

#endif  // LCAKNAP_SERVE_ENGINE_H
