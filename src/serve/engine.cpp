#include "serve/engine.h"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "store/snapshot.h"
#include "util/rng.h"

namespace lcaknap::serve {

std::vector<double> serve_latency_buckets() {
  // 0.5 us up by factor 2: cache hits land in the bottom buckets, linger-
  // bounded batches mid-range, deadline-scale tails at the top (~0.5 s).
  return metrics::Histogram::exponential_buckets(0.5, 2.0, 20);
}

std::vector<double> serve_batch_size_buckets() {
  return metrics::Histogram::exponential_buckets(1.0, 2.0, 10);
}

ServeEngine::ServeEngine(const core::LcaKp& lca, const EngineConfig& config,
                         metrics::Registry& registry)
    : lca_(&lca),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : &util::system_clock()),
      registry_(&registry),
      requests_ok_(&registry.counter("serve_requests_total",
                                     "Requests finished by the serving engine",
                                     {{"outcome", "ok"}})),
      requests_overloaded_(&registry.counter(
          "serve_requests_total", "Requests finished by the serving engine",
          {{"outcome", "overloaded"}})),
      requests_deadline_(&registry.counter(
          "serve_requests_total", "Requests finished by the serving engine",
          {{"outcome", "deadline"}})),
      requests_degraded_(&registry.counter(
          "serve_requests_total", "Requests finished by the serving engine",
          {{"outcome", "degraded"}})),
      requests_error_(&registry.counter(
          "serve_requests_total", "Requests finished by the serving engine",
          {{"outcome", "error"}})),
      batch_size_(&registry.histogram(
          "serve_batch_size", "Requests grouped into one micro-batch",
          serve_batch_size_buckets())),
      latency_us_(&registry.histogram(
          "serve_request_latency_us",
          "End-to-end request latency in microseconds (admission to completion)",
          serve_latency_buckets())),
      queue_depth_gauge_(&registry.gauge(
          "serve_queue_depth", "Requests waiting in the engine's bounded queue")),
      queue_(std::max<std::size_t>(1, config.queue_capacity)),
      cache_(config.cache, registry),
      pool_(std::max<std::size_t>(1, config.workers)) {
  // The one-time Theorem 4.1 warm-up; afterwards `run_` is read-only and
  // shared by every worker (Definition 2.3's shared-seed replica).  The
  // sharded warm-up draws from PRF substreams of `warmup_tape_seed`, so the
  // thread count never changes `run_` (Lemma 4.9 consistency is preserved).
  // With `warm_state` set, the warm-up was already paid (by a previous
  // process, persisted as a snapshot) and the engine adopts it — served
  // answers are identical because they are a pure function of this state.
  std::size_t warmup_threads = config.warmup_threads;
  if (warmup_threads == 0) warmup_threads = lca.config().warmup_threads;
  if (warmup_threads == 0) {
    warmup_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const auto warmup_start = Clock::now();
  std::shared_ptr<const core::LcaKpRun> run;
  if (config_.warm_state != nullptr) {
    run = config_.warm_state;
    warmup_threads = 0;  // no warm-up ran; the gauge reflects that
  } else {
    run = std::make_shared<core::LcaKpRun>(
        lca_->run_warmup(config.warmup_tape_seed, warmup_threads));
  }
  const auto warmup_us = std::chrono::duration<double, std::micro>(
                             Clock::now() - warmup_start)
                             .count();
  registry
      .histogram("warmup_duration_us",
                 "Wall time of the one-time warm-up pipeline run in microseconds",
                 metrics::Histogram::exponential_buckets(100.0, 2.0, 20))
      .observe(warmup_us);
  registry
      .gauge("warmup_threads",
             "Threads used by the engine's sharded warm-up")
      .set(static_cast<double>(warmup_threads));
  registry
      .gauge("warmup_from_snapshot",
             "1 when the engine adopted a restored warm state instead of "
             "running the warm-up pipeline")
      .set(config_.warm_state != nullptr ? 1.0 : 0.0);
  batch_eval_us_ = &registry.histogram(
      "serve_batch_eval_us",
      "Wall time of one BatchEval gather+classify over a dispatch group's "
      "cache misses, in microseconds",
      metrics::Histogram::exponential_buckets(0.5, 2.0, 20));
  batch_eval_kernel_gauge_ = &registry.gauge(
      "batch_eval_kernel",
      "Active batch-eval classify kernel (0 scalar, 1 avx2, 2 avx512; -1 "
      "batch path disabled)");
  epoch_gauge_ = &registry.gauge(
      "serve_epoch", "Current instance epoch served (0 = static instance)");
  // Epoch 0: the static-instance snapshot every engine starts on.  Its
  // certificate log lives directly in `cert_dir`; later epochs get
  // `cert_dir/epoch-<id>/` subdirectories.
  epochs_.push_back(
      make_epoch(0, lca, std::move(run), nullptr, config_.cert_dir, registry));
  batch_eval_kernel_gauge_->set(
      epochs_.back()->batch_eval != nullptr
          ? static_cast<double>(epochs_.back()->batch_eval->kernel())
          : -1.0);
  epoch_gauge_->set(0.0);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

std::shared_ptr<const ServeEngine::Epoch> ServeEngine::make_epoch(
    std::uint64_t epoch_id, const core::LcaKp& lca,
    std::shared_ptr<const core::LcaKpRun> run,
    std::shared_ptr<const void> keepalive, const std::string& cert_dir,
    metrics::Registry& registry) {
  auto epoch = std::make_shared<Epoch>();
  epoch->epoch_id = epoch_id;
  epoch->lca = &lca;
  epoch->run = std::move(run);
  epoch->keepalive = std::move(keepalive);
  if (config_.batch_eval) {
    // Built after the run is final (warm-up, snapshot, or delta warm-up):
    // the evaluator precomputes its SoA constants from the warm state and
    // picks the best kernel this binary AND this CPU support.
    epoch->batch_eval = std::make_shared<core::BatchEval>(lca, *epoch->run);
  }
  if (config_.certify) {
    // The log header embeds the snapshot fingerprint of THIS serving
    // context (instance + shared seed + resolved params + tape-seed echo +
    // epoch), so the log can only ever be audited against the matching
    // epoch's snapshot.
    cert::CertLogConfig cert_config;
    cert_config.directory = cert_dir;
    if (config_.cert_segment_records > 0) {
      cert_config.max_records_per_segment = config_.cert_segment_records;
    }
    epoch->cert_log = std::make_shared<cert::CertLog>(
        cert_config,
        store::fingerprint_of(lca, config_.warmup_tape_seed, epoch_id),
        registry);
    epoch->cert_threshold_idx = cert::active_threshold_index(*epoch->run);
  }
  return epoch;
}

std::shared_ptr<const ServeEngine::Epoch> ServeEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  return epochs_.back();
}

void ServeEngine::advance_epoch(std::uint64_t epoch_id, const core::LcaKp& lca,
                                std::shared_ptr<const core::LcaKpRun> run,
                                std::shared_ptr<const void> keepalive) {
  if (run == nullptr) {
    throw std::invalid_argument("ServeEngine::advance_epoch: run is null");
  }
  std::lock_guard<std::mutex> advance_lock(advance_mutex_);
  const std::uint64_t current = snapshot()->epoch_id;
  if (epoch_id <= current) {
    throw std::invalid_argument(
        "ServeEngine::advance_epoch: epoch " + std::to_string(epoch_id) +
        " is not after current epoch " + std::to_string(current));
  }
  std::string cert_dir = config_.cert_dir;
  if (config_.certify) {
    cert_dir += "/epoch-" + std::to_string(epoch_id);
    std::filesystem::create_directories(cert_dir);
  }
  // Build the new snapshot before touching anything the request path sees:
  // traffic keeps flowing under the old epoch while BatchEval rebuilds and
  // the new certificate log opens.
  auto next = make_epoch(epoch_id, lca, std::move(run), std::move(keepalive),
                         cert_dir, *registry_);
  // Bump the cache generation BEFORE publishing the snapshot.  In the window
  // between the two, old-epoch workers miss (their entries are stale) and
  // new-generation puts from nobody-yet are impossible — conservative, never
  // stale.  The reverse order would let an old-generation hit answer for the
  // already-published new epoch.
  cache_.bump_generation(epoch_id);
  {
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    epochs_.push_back(std::move(next));
  }
  epoch_gauge_->set(static_cast<double>(epoch_id));
  batch_eval_kernel_gauge_->set(
      snapshot()->batch_eval != nullptr
          ? static_cast<double>(snapshot()->batch_eval->kernel())
          : -1.0);
}

std::uint64_t ServeEngine::epoch() const { return snapshot()->epoch_id; }

const core::LcaKpRun& ServeEngine::run() const { return *snapshot()->run; }

const cert::CertLog* ServeEngine::cert_log() const {
  return snapshot()->cert_log.get();
}

core::BatchKernel ServeEngine::batch_kernel() const {
  const auto snap = snapshot();
  return snap->batch_eval != nullptr ? snap->batch_eval->kernel()
                                     : core::BatchKernel::kScalar;
}

ServeEngine::~ServeEngine() { drain(); }

void ServeEngine::finish(Request& request, const Response& response) {
  switch (response.outcome) {
    case Outcome::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      requests_ok_->inc();
      break;
    case Outcome::kOverloaded:
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      requests_overloaded_->inc();
      break;
    case Outcome::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      requests_deadline_->inc();
      break;
    case Outcome::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      requests_degraded_->inc();
      break;
    case Outcome::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      requests_error_->inc();
      break;
  }
  latency_us_->observe(std::chrono::duration<double, std::micro>(
                           Clock::now() - request.enqueued_at)
                           .count());
  if (request.callback) {
    // Callback path: exactly-once like the promise path, and exception-safe —
    // a throwing callback must never take down the worker that ran it.
    try {
      request.callback(response);
    } catch (...) {
    }
  } else {
    request.promise.set_value(response);
  }
}

std::uint64_t ServeEngine::deadline_from(
    std::chrono::microseconds deadline) const {
  const std::uint64_t now = clock_->now_us();
  // Negative deadlines are honoured as already-expired (tests use them to
  // force shedding); `expired()` is `deadline_us <= now`, so "now" qualifies.
  if (deadline.count() < 0) return now;
  const auto rel = static_cast<std::uint64_t>(deadline.count());
  // Saturate instead of wrapping past kNoDeadline.
  if (rel >= Request::kNoDeadline - now) return Request::kNoDeadline - 1;
  return now + rel;
}

void ServeEngine::admit(Request&& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.try_push(std::move(request))) {
    // try_push fails without consuming the request; reject it here so every
    // submitted request completes exactly once.
    Response response;
    response.outcome = Outcome::kOverloaded;
    finish(request, response);
  }
  queue_depth_gauge_->set(static_cast<double>(queue_.depth()));
}

std::future<Response> ServeEngine::submit_at(std::size_t item,
                                             std::uint64_t deadline_us) {
  Request request;
  request.item = item;
  request.enqueued_at = Clock::now();
  request.deadline_us = deadline_us;
  auto future = request.promise.get_future();
  admit(std::move(request));
  return future;
}

std::future<Response> ServeEngine::submit(std::size_t item) {
  if (config_.default_deadline.count() != 0) {
    return submit(item, config_.default_deadline);
  }
  return submit_at(item, Request::kNoDeadline);
}

std::future<Response> ServeEngine::submit(std::size_t item,
                                          std::chrono::microseconds deadline) {
  return submit_at(item, deadline_from(deadline));
}

void ServeEngine::submit_cb(std::size_t item, std::uint64_t deadline_us,
                            CompletionCallback callback) {
  Request request;
  request.item = item;
  request.enqueued_at = Clock::now();
  request.deadline_us = deadline_us;
  request.callback = std::move(callback);
  admit(std::move(request));
}

void ServeEngine::submit(std::size_t item, CompletionCallback callback) {
  if (config_.default_deadline.count() != 0) {
    submit(item, config_.default_deadline, std::move(callback));
    return;
  }
  submit_cb(item, Request::kNoDeadline, std::move(callback));
}

void ServeEngine::submit(std::size_t item, std::chrono::microseconds deadline,
                         CompletionCallback callback) {
  submit_cb(item, deadline_from(deadline), std::move(callback));
}

Response ServeEngine::submit_wait(std::size_t item) {
  return submit(item).get();
}

void ServeEngine::dispatch_loop() {
  Batcher batcher(config_.batcher);
  std::vector<Batch> ready;
  std::deque<Request> backlog;
  // Wake at least this often so linger windows close promptly even when the
  // queue is quiet.
  const auto poll = std::chrono::microseconds(
      std::clamp<std::int64_t>(config_.batcher.max_linger.count() / 2, 50, 1000));
  while (true) {
    Request request;
    const bool got = queue_.pop_for(request, poll);
    if (got) {
      backlog.push_back(std::move(request));
      // Under load, take the rest of the backlog in one lock acquisition so
      // per-request queue overhead stops being the dispatch bottleneck.
      queue_.pop_all(backlog);
    }
    const auto now = Clock::now();
    const std::uint64_t now_us = clock_->now_us();
    for (auto& pending : backlog) {
      if (pending.expired(now_us)) {
        Response response;
        response.outcome = Outcome::kDeadlineExceeded;
        finish(pending, response);
      } else {
        batcher.add(std::move(pending), now, ready);
      }
    }
    backlog.clear();
    batcher.collect_expired(now, ready);
    dispatch_ready(ready);
    queue_depth_gauge_->set(static_cast<double>(queue_.depth()));
    if (!got && queue_.closed() && queue_.depth() == 0) {
      batcher.flush_all(ready);
      dispatch_ready(ready);
      return;
    }
  }
}

void ServeEngine::dispatch_ready(std::vector<Batch>& ready) {
  if (ready.empty()) return;
  // Deep backlogs get several batches per pool task so the per-task cost
  // (allocation, pool mutex, wake-up) amortizes; shallow ones keep one
  // batch per task so independent evaluations still run in parallel.
  const std::size_t per_task = std::clamp<std::size_t>(
      ready.size() / std::max<std::size_t>(1, config_.workers), 1, 8);
  for (std::size_t begin = 0; begin < ready.size(); begin += per_task) {
    const std::size_t end = std::min(begin + per_task, ready.size());
    // std::function requires copyable callables; batches hold move-only
    // promises, so they travel to the worker behind a shared_ptr.
    auto boxed = std::make_shared<std::vector<Batch>>();
    boxed->reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) boxed->push_back(std::move(ready[i]));
    pool_.submit([this, boxed] {
      // Capture the epoch snapshot ONCE per dispatch group: every request in
      // the group evaluates against exactly one epoch's warm state, batch
      // evaluator, and certificate log, even if advance_epoch runs mid-group.
      const auto snap = snapshot();
      if (snap->batch_eval != nullptr) {
        execute_batch_group(*boxed, snap);
      } else {
        for (auto& batch : *boxed) execute_batch(std::move(batch), snap);
      }
    });
  }
  ready.clear();
}

void ServeEngine::execute_batch(Batch batch,
                                const std::shared_ptr<const Epoch>& snap) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch.requests.size(), std::memory_order_relaxed);
  batch_size_->observe(static_cast<double>(batch.requests.size()));

  // One evaluation serves the whole batch: every request asks about the
  // same item, and the answer is a deterministic function of the shared
  // seed, so computing it once is not an optimization gamble — it is what
  // Definition 2.3 licenses.
  Response response;
  const auto cached = cache_.get(batch.item);
  if (cached.has_value()) {
    response.outcome = Outcome::kOk;
    response.answer = cached->answer;
    response.cache_hit = true;
    // A hit is always current-generation, which may be *ahead* of this
    // worker's snapshot if an advance landed between capture and lookup;
    // attribute the epoch the answer actually came from.
    response.epoch_id = cached->generation;
    // Witness for the certificate record: from the cache entry (zero oracle
    // reads), refreshed by a paranoia re-evaluation when one runs.
    bool has_witness = cached->has_witness;
    bool witness_large = cached->large;
    std::int64_t witness_profit = cached->profit;
    std::int64_t witness_weight = cached->weight;
    if (cached->paranoia_due && cached->generation == snap->epoch_id) {
      // Live consistency SLO: recompute and compare.  A mismatch is a
      // reproducibility bug, not staleness; repair the cache and count it.
      // (Skipped when the hit's generation is not this worker's epoch —
      // re-deriving an epoch-N+1 answer against the epoch-N run would
      // manufacture false violations.)
      try {
        core::LcaKp::AnswerWitness fresh;
        const bool fresh_answer =
            snap->lca->answer_with_witness(*snap->run, batch.item, fresh);
        cache_.record_paranoia(fresh_answer == cached->answer);
        // Re-store with the fresh witness: repairs a violation and upgrades
        // witness-free entries that predate certification.
        cache_.put(batch.item,
                   AnswerCache::Entry{fresh.answer, true, fresh.large,
                                      fresh.profit, fresh.weight,
                                      snap->epoch_id});
        response.answer = fresh_answer;
        has_witness = true;
        witness_large = fresh.large;
        witness_profit = fresh.profit;
        witness_weight = fresh.weight;
      } catch (...) {
        // The recheck is best-effort; an oracle failure here must not take
        // down an answer we already hold.
      }
    }
    if (snap->cert_log != nullptr) {
      if (has_witness) {
        certify_answer(*snap, batch.item, witness_large, witness_profit,
                       witness_weight, response.answer);
      } else {
        snap->cert_log->skip();
      }
    }
  } else {
    try {
      core::LcaKp::AnswerWitness witness;
      response.answer =
          snap->lca->answer_with_witness(*snap->run, batch.item, witness);
      response.outcome = Outcome::kOk;
      response.epoch_id = snap->epoch_id;
      cache_.put(batch.item,
                 AnswerCache::Entry{witness.answer, true, witness.large,
                                    witness.profit, witness.weight,
                                    snap->epoch_id});
      if (snap->cert_log != nullptr) {
        certify_answer(*snap, batch.item, witness.large, witness.profit,
                       witness.weight, witness.answer);
      }
    } catch (const oracle::OracleUnavailable&) {
      // The oracle stayed down through the whole client policy (retries
      // exhausted, retry budget empty, or circuit breaker open).  With
      // degradation on, fall back to the warm-state rule; the degraded
      // answer is deliberately NOT cached — it may be below LCA quality,
      // and the cache must only ever hold Definition 2.3 answers.
      if (config_.degrade) {
        response.outcome = Outcome::kDegraded;
        response.answer = degraded_answer(*snap, batch.item);
        response.epoch_id = snap->epoch_id;
      } else {
        response.outcome = Outcome::kError;
      }
    } catch (...) {
      response.outcome = Outcome::kError;
    }
  }

  const std::uint64_t now_us = clock_->now_us();
  for (auto& request : batch.requests) {
    if (response.outcome == Outcome::kOk && request.expired(now_us)) {
      Response shed;
      shed.outcome = Outcome::kDeadlineExceeded;
      finish(request, shed);
    } else {
      finish(request, response);
    }
  }
}

void ServeEngine::execute_batch_group(std::vector<Batch>& group,
                                      const std::shared_ptr<const Epoch>& snap) {
  if (group.empty()) return;
  batch_eval_groups_.fetch_add(1, std::memory_order_relaxed);

  // One lane per batch (a batch is one distinct item plus its requests).
  std::vector<std::size_t> items;
  items.reserve(group.size());
  for (auto& batch : group) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(batch.requests.size(),
                                std::memory_order_relaxed);
    batch_size_->observe(static_cast<double>(batch.requests.size()));
    items.push_back(batch.item);
  }

  // Stage 1: one shard-grouped cache lookup for the whole group.
  std::vector<std::optional<AnswerCache::Hit>> cached;
  cache_.get_batch(items, cached);

  std::vector<Response> responses(group.size());
  // Witness per lane for certification (cache entry or fresh evaluation).
  struct LaneWitness {
    bool has = false;
    bool large = false;
    std::int64_t profit = 0;
    std::int64_t weight = 0;
  };
  std::vector<LaneWitness> witnesses(group.size());

  // Stage 2: hit lanes finish from the cache (zero oracle reads), with the
  // same paranoia recheck-and-repair the per-request path performs.
  std::vector<std::size_t> miss_lanes;
  miss_lanes.reserve(group.size());
  for (std::size_t lane = 0; lane < group.size(); ++lane) {
    if (!cached[lane].has_value()) {
      miss_lanes.push_back(lane);
      continue;
    }
    const AnswerCache::Hit& hit = *cached[lane];
    Response& response = responses[lane];
    response.outcome = Outcome::kOk;
    response.answer = hit.answer;
    response.cache_hit = true;
    response.epoch_id = hit.generation;  // the epoch the answer came from
    witnesses[lane] = LaneWitness{hit.has_witness, hit.large, hit.profit,
                                  hit.weight};
    if (hit.paranoia_due && hit.generation == snap->epoch_id) {
      try {
        core::LcaKp::AnswerWitness fresh;
        const bool fresh_answer =
            snap->lca->answer_with_witness(*snap->run, items[lane], fresh);
        cache_.record_paranoia(fresh_answer == hit.answer);
        cache_.put(items[lane],
                   AnswerCache::Entry{fresh.answer, true, fresh.large,
                                      fresh.profit, fresh.weight,
                                      snap->epoch_id});
        response.answer = fresh_answer;
        witnesses[lane] =
            LaneWitness{true, fresh.large, fresh.profit, fresh.weight};
      } catch (...) {
        // Best-effort recheck, exactly as in execute_batch.
      }
    }
  }

  // Stage 3: all miss lanes go through one SoA gather+classify.
  if (!miss_lanes.empty()) {
    std::vector<std::size_t> miss_items;
    miss_items.reserve(miss_lanes.size());
    for (const auto lane : miss_lanes) miss_items.push_back(items[lane]);

    static thread_local core::BatchScratch scratch;
    const auto eval_start = Clock::now();
    snap->batch_eval->evaluate(miss_items, scratch);
    batch_eval_us_->observe(std::chrono::duration<double, std::micro>(
                                Clock::now() - eval_start)
                                .count());

    std::vector<AnswerCache::PutItem> puts;
    puts.reserve(miss_lanes.size());
    for (std::size_t j = 0; j < miss_lanes.size(); ++j) {
      const std::size_t lane = miss_lanes[j];
      Response& response = responses[lane];
      switch (scratch.status[j]) {
        case core::LaneStatus::kOk: {
          const bool answer = scratch.answers[j] != 0;
          const bool large = scratch.large[j] != 0;
          response.outcome = Outcome::kOk;
          response.answer = answer;
          response.epoch_id = snap->epoch_id;
          witnesses[lane] = LaneWitness{true, large, scratch.profits[j],
                                        scratch.weights[j]};
          puts.push_back(AnswerCache::PutItem{
              items[lane], AnswerCache::Entry{answer, true, large,
                                              scratch.profits[j],
                                              scratch.weights[j],
                                              snap->epoch_id}});
          break;
        }
        case core::LaneStatus::kUnavailable:
          // Lane-isolated oracle failure: same degrade-or-error choice as
          // the per-request path, and degraded answers are never cached.
          if (config_.degrade) {
            response.outcome = Outcome::kDegraded;
            response.answer = degraded_answer(*snap, items[lane]);
            response.epoch_id = snap->epoch_id;
          } else {
            response.outcome = Outcome::kError;
          }
          break;
        case core::LaneStatus::kError:
          response.outcome = Outcome::kError;
          break;
      }
    }
    cache_.put_batch(puts);
  }

  // Stage 4: certify and finish, per batch, same semantics as execute_batch.
  const std::uint64_t now_us = clock_->now_us();
  for (std::size_t lane = 0; lane < group.size(); ++lane) {
    const Response& response = responses[lane];
    if (snap->cert_log != nullptr && response.outcome == Outcome::kOk) {
      const LaneWitness& w = witnesses[lane];
      if (w.has) {
        certify_answer(*snap, items[lane], w.large, w.profit, w.weight,
                       response.answer);
      } else {
        snap->cert_log->skip();
      }
    }
    for (auto& request : group[lane].requests) {
      if (response.outcome == Outcome::kOk && request.expired(now_us)) {
        Response shed;
        shed.outcome = Outcome::kDeadlineExceeded;
        finish(request, shed);
      } else {
        finish(request, response);
      }
    }
  }
}

void ServeEngine::certify_answer(const Epoch& snap, std::size_t item,
                                 bool large, std::int64_t profit,
                                 std::int64_t weight, bool answer) noexcept {
  cert::CertRecord record;
  record.item = item;
  record.profit = profit;
  record.weight = weight;
  record.case_tag = cert::case_of(
      core::LcaKp::AnswerWitness{profit, weight, large, answer});
  record.answer = answer;
  record.threshold_idx = large ? -1 : snap.cert_threshold_idx;
  (void)snap.cert_log->append(record);  // never throws; failures are counted
}

bool ServeEngine::degraded_answer(const Epoch& snap,
                                  std::size_t item) noexcept {
  // Zero-oracle fallback: the warm-up run already materialized the large-item
  // set L(Ĩ), so membership there is answerable from memory; everything else
  // gets the trivial-LCA "no" (Definition 2.4's floor).  Deterministic per
  // (seed, item), so degraded answers are still replica-consistent.
  return snap.run->index_large.contains(item);
}

void ServeEngine::drain() {
  std::call_once(drain_once_, [this] {
    queue_.close();
    if (dispatcher_.joinable()) dispatcher_.join();
    pool_.wait_idle();
    // All workers are idle: seal EVERY epoch's active certificate segment
    // atomically, not just the current one — an advance mid-run must not
    // orphan the previous epoch's tail records.
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    for (const auto& epoch : epochs_) {
      if (epoch->cert_log != nullptr) epoch->cert_log->seal();
    }
    queue_depth_gauge_->set(0.0);
  });
}

EngineStats ServeEngine::stats() const {
  EngineStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.overloaded = overloaded_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  stats.batch_eval_groups = batch_eval_groups_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_evictions = cache_.evictions();
  stats.cache_invalidations = cache_.invalidations();
  stats.paranoia_checks = cache_.paranoia_checks();
  stats.paranoia_violations = cache_.paranoia_violations();
  {
    // Certificate counters aggregate across every epoch's log: an advance
    // must never make already-written records disappear from the readout.
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    stats.epoch = epochs_.back()->epoch_id;
    for (const auto& epoch : epochs_) {
      if (epoch->cert_log == nullptr) continue;
      stats.cert_records += epoch->cert_log->records_written();
      stats.cert_skipped += epoch->cert_log->records_skipped();
      stats.cert_bytes += epoch->cert_log->bytes_written();
      stats.cert_segments += epoch->cert_log->segments_sealed();
    }
  }
  return stats;
}

}  // namespace lcaknap::serve
