#ifndef LCAKNAP_SERVE_BATCHER_H
#define LCAKNAP_SERVE_BATCHER_H

#include <chrono>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "serve/request.h"

/// \file batcher.h
/// Micro-batching by item index.
///
/// Every request for the same item has, by Definition 2.3, the same answer:
/// the membership rule is a deterministic function of the shared seed.  The
/// batcher exploits that by holding requests briefly and grouping them per
/// item, so a burst of duplicate hot-key queries costs ONE LCA evaluation
/// (one oracle read) regardless of fan-in.  A batch closes when it reaches
/// `max_batch_size` or when it has lingered `max_linger` since its first
/// request — the classic throughput/latency dial.
///
/// The batcher is a single-owner component: the engine's dispatcher thread
/// is its only caller, so it carries no locking of its own (the queue in
/// front of it is the concurrency boundary).

namespace lcaknap::serve {

struct BatcherConfig {
  /// Batch closes at this many requests.  1 disables grouping.
  std::size_t max_batch_size = 64;
  /// Batch closes this long after its first request.  0 closes every batch
  /// on the next `collect_expired` sweep.
  std::chrono::microseconds max_linger{200};
};

/// A closed group of same-item requests, evaluated as one unit.
struct Batch {
  std::size_t item = 0;
  Clock::time_point opened_at{};
  std::vector<Request> requests;
};

class Batcher {
 public:
  explicit Batcher(const BatcherConfig& config);

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Files `request` under its item; appends to `ready` any batch this
  /// closes (a full one for this item).
  void add(Request&& request, Clock::time_point now, std::vector<Batch>& ready);

  /// Closes every open batch whose linger window has passed.
  void collect_expired(Clock::time_point now, std::vector<Batch>& ready);

  /// Closes every open batch regardless of age (drain path).
  void flush_all(std::vector<Batch>& ready);

  /// Requests currently held in open batches.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] const BatcherConfig& config() const noexcept { return config_; }

 private:
  BatcherConfig config_;
  std::unordered_map<std::size_t, Batch> open_;  // item -> open batch
  std::size_t pending_ = 0;
};

}  // namespace lcaknap::serve

#endif  // LCAKNAP_SERVE_BATCHER_H
