#ifndef LCAKNAP_SERVE_REQUEST_H
#define LCAKNAP_SERVE_REQUEST_H

#include <chrono>
#include <cstddef>
#include <future>

/// \file request.h
/// The request vocabulary of the concurrent serving engine (src/serve/).
///
/// The paper's LCA model is a serving contract: independent replicas answer
/// point queries "is item i in the solution?" consistently from a shared
/// seed (Definition 2.3).  The engine makes that contract operational — a
/// request is one membership query travelling queue → batcher → worker →
/// cache, and its `Response` reports both the answer and the admission
/// outcome (a production serving path may legitimately say "no capacity"
/// or "too late" instead of an answer; it must never say two different
/// answers for the same item).

namespace lcaknap::serve {

/// Engine-wide monotonic clock; deadlines and linger windows use it.
using Clock = std::chrono::steady_clock;

/// How a request left the engine.
enum class Outcome {
  kOk,                ///< answered (from the cache or a fresh evaluation)
  kOverloaded,        ///< rejected at admission: queue full or engine drained
  kDeadlineExceeded,  ///< shed: its deadline passed before evaluation
  kDegraded,          ///< answered from the degradation chain: the oracle was
                      ///< unavailable (retries exhausted or breaker open) and
                      ///< the engine fell back to its O(1) warm-state rule
  kError,             ///< evaluation failed (e.g. the oracle stayed unavailable)
};

/// Stable label for metrics (`serve_requests_total{outcome=...}`) and logs.
[[nodiscard]] constexpr const char* outcome_name(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kOverloaded: return "overloaded";
    case Outcome::kDeadlineExceeded: return "deadline";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kError: return "error";
  }
  return "unknown";
}

/// What the submitter gets back, exactly once per submitted request.
struct Response {
  Outcome outcome = Outcome::kError;
  bool answer = false;     ///< membership decision; meaningful iff kOk or
                           ///< kDegraded (degraded answers are best-effort:
                           ///< consistent but possibly below LCA quality)
  bool cache_hit = false;  ///< answered from the sharded cache
};

/// One in-flight membership query.  Move-only (owns the promise side of the
/// submitter's future).
struct Request {
  std::size_t item = 0;
  Clock::time_point enqueued_at{};
  /// Requests whose deadline passes before evaluation are shed with
  /// kDeadlineExceeded; `Clock::time_point::max()` means no deadline.
  Clock::time_point deadline = Clock::time_point::max();
  std::promise<Response> promise;

  [[nodiscard]] bool expired(Clock::time_point now) const noexcept {
    return deadline <= now;
  }
};

}  // namespace lcaknap::serve

#endif  // LCAKNAP_SERVE_REQUEST_H
