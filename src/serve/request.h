#ifndef LCAKNAP_SERVE_REQUEST_H
#define LCAKNAP_SERVE_REQUEST_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>

/// \file request.h
/// The request vocabulary of the concurrent serving engine (src/serve/).
///
/// The paper's LCA model is a serving contract: independent replicas answer
/// point queries "is item i in the solution?" consistently from a shared
/// seed (Definition 2.3).  The engine makes that contract operational — a
/// request is one membership query travelling queue → batcher → worker →
/// cache, and its `Response` reports both the answer and the admission
/// outcome (a production serving path may legitimately say "no capacity"
/// or "too late" instead of an answer; it must never say two different
/// answers for the same item).
///
/// Completion travels back one of two ways, chosen at submission: a
/// `std::future<Response>` (the original blocking-consumer API) or a
/// completion callback (the non-blocking API the network front-end
/// `src/net/` marshals onto connection write queues).  Exactly one of the
/// two fires, exactly once, for every submitted request — the conservation
/// law counts both paths identically.
///
/// Deadlines are *semantic* time and therefore run on the engine's injected
/// `util::Clock` (`EngineConfig::clock`): microsecond instants compared
/// against `clock->now_us()`.  Under a `util::VirtualClock`, wire-level
/// timeout tests advance time explicitly and shedding becomes deterministic
/// instead of wall-clock flaky.  (Queue waits and batch linger remain real
/// time: they are throughput/latency dials, not request semantics.)

namespace lcaknap::serve {

/// Engine-wide monotonic clock; deadlines and linger windows use it.
using Clock = std::chrono::steady_clock;

/// How a request left the engine.
enum class Outcome {
  kOk,                ///< answered (from the cache or a fresh evaluation)
  kOverloaded,        ///< rejected at admission: queue full or engine drained
  kDeadlineExceeded,  ///< shed: its deadline passed before evaluation
  kDegraded,          ///< answered from the degradation chain: the oracle was
                      ///< unavailable (retries exhausted or breaker open) and
                      ///< the engine fell back to its O(1) warm-state rule
  kError,             ///< evaluation failed (e.g. the oracle stayed unavailable)
};

/// Stable label for metrics (`serve_requests_total{outcome=...}`) and logs.
[[nodiscard]] constexpr const char* outcome_name(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kOverloaded: return "overloaded";
    case Outcome::kDeadlineExceeded: return "deadline";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kError: return "error";
  }
  return "unknown";
}

/// What the submitter gets back, exactly once per submitted request.
struct Response {
  Outcome outcome = Outcome::kError;
  bool answer = false;     ///< membership decision; meaningful iff kOk or
                           ///< kDegraded (degraded answers are best-effort:
                           ///< consistent but possibly below LCA quality)
  bool cache_hit = false;  ///< answered from the sharded cache
  /// Instance epoch the answer was derived under (0 for static instances).
  /// Under live updates (src/dyn), a request admitted under epoch N may
  /// legally complete with either epoch's answer across an advance — but
  /// the epoch actually served must be attributed here and in the
  /// certificate record.
  std::uint64_t epoch_id = 0;
};

/// How a completed request reaches its submitter on the callback path.  May
/// be invoked from any engine thread (worker, dispatcher, or the submitting
/// thread itself for admission rejections); it must not block and must not
/// throw (a throwing callback is swallowed, never allowed to take down a
/// worker).
using CompletionCallback = std::function<void(const Response&)>;

/// One in-flight membership query.  Move-only (owns the promise side of the
/// submitter's future, or the completion callback).
struct Request {
  /// Deadline sentinel: never expires.
  static constexpr std::uint64_t kNoDeadline = UINT64_MAX;

  std::size_t item = 0;
  Clock::time_point enqueued_at{};
  /// Absolute instant on the engine's `util::Clock` (`now_us()` scale) after
  /// which the request is shed with kDeadlineExceeded; `kNoDeadline` means
  /// no deadline.
  std::uint64_t deadline_us = kNoDeadline;
  std::promise<Response> promise;
  /// When set, completion invokes this instead of fulfilling the promise.
  CompletionCallback callback;

  [[nodiscard]] bool expired(std::uint64_t now_us) const noexcept {
    return deadline_us <= now_us;
  }
};

}  // namespace lcaknap::serve

#endif  // LCAKNAP_SERVE_REQUEST_H
