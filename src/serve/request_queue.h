#ifndef LCAKNAP_SERVE_REQUEST_QUEUE_H
#define LCAKNAP_SERVE_REQUEST_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "serve/request.h"

/// \file request_queue.h
/// Bounded MPMC request queue with admission control.
///
/// Admission control is the first of the engine's two load-shedding points:
/// when the queue is full, `try_push` refuses immediately and the caller
/// completes the request with `kOverloaded` — the engine never buffers
/// unbounded backlog, so a traffic spike degrades into fast rejections
/// instead of unbounded latency.  (The second shedding point is the deadline
/// check at dispatch/evaluation time; see engine.cpp.)
///
/// Any number of producers may push concurrently; any number of consumers
/// may pop.  `close()` makes the shutdown path race-free: no push is
/// admitted afterwards, while consumers drain what was already accepted —
/// the queue never loses an admitted request.

namespace lcaknap::serve {

class RequestQueue {
 public:
  /// `capacity` must be >= 1 (a zero-capacity queue would reject everything).
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admits `request` unless the queue is full or closed.  Returns whether
  /// the request was admitted; on `false` the caller still owns it.
  [[nodiscard]] bool try_push(Request&& request);

  /// Pops the oldest request, waiting up to `wait` for one to arrive.
  /// Returns false on timeout, or immediately when closed and empty.
  [[nodiscard]] bool pop_for(Request& out, std::chrono::microseconds wait);

  /// Appends every queued request to `out` without waiting and returns how
  /// many were moved.  One lock acquisition for the whole backlog — the
  /// dispatcher uses this after a successful pop so per-request queue
  /// overhead amortizes away under load.
  std::size_t pop_all(std::deque<Request>& out);

  /// Rejects all future pushes and wakes every waiting consumer.  Already
  /// admitted requests remain poppable.  Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Request> queue_;
  bool closed_ = false;
};

}  // namespace lcaknap::serve

#endif  // LCAKNAP_SERVE_REQUEST_QUEUE_H
