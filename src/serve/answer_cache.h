#ifndef LCAKNAP_SERVE_ANSWER_CACHE_H
#define LCAKNAP_SERVE_ANSWER_CACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.h"

/// \file answer_cache.h
/// Sharded LRU cache of `(item index -> membership decision)` answers.
///
/// Caching a query answer is only sound because of Definition 2.3: every
/// answer is a deterministic function of (shared seed, item), so a stored
/// decision can never go stale — replaying the evaluation must produce the
/// same bit.  The cache makes that assumption *checkable* instead of
/// trusted: in paranoia mode it flags every Nth hit for re-evaluation, and
/// the engine recomputes the answer and reports back whether it matched.
/// `serve_cache_paranoia_violations_total` staying at zero is the paper's
/// consistency guarantee (Lemma 4.9) as a live SLO; any nonzero value means
/// a reproducibility regression, not load.
///
/// Layout: `shards` (rounded up to a power of two) independent shards, each
/// a mutex-guarded LRU list + index, items routed by a mixed hash of the
/// index.  Counters (hits/misses/evictions/paranoia) are relaxed atomics
/// mirrored into the metrics registry.
///
/// **Generations (epoch-scoped invalidation, src/dyn).**  Definition 2.3's
/// "never stale" holds only *within* one instance epoch; an epoch advance
/// changes the function being cached.  Rather than scanning every shard on
/// advance, the cache carries a monotone generation: entries are stamped
/// with the generation they were derived under, `bump_generation(epoch)` is
/// O(1), a get that finds an older-generation entry drops it and reports a
/// miss (never a stale answer), and a put stamped with an older generation
/// is discarded (a worker still finishing epoch-N work after the advance
/// must not poison the epoch-N+1 cache).  `serve_cache_invalidations_total`
/// counts bumps.

namespace lcaknap::serve {

struct AnswerCacheConfig {
  /// Total entries across all shards; 0 disables the cache (every get
  /// misses, every put is dropped).
  std::size_t capacity = 1 << 16;
  /// Requested shard count; rounded up to the next power of two and capped
  /// at `capacity` so every shard holds at least one entry.
  std::size_t shards = 8;
  /// Re-evaluate every Nth hit and compare (0 = paranoia off).
  std::uint64_t paranoia_every = 0;
};

class AnswerCache {
 public:
  explicit AnswerCache(const AnswerCacheConfig& config,
                       metrics::Registry& registry = metrics::global_registry());

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Cached value: the answer bit plus (optionally) the evaluation witness —
  /// the raw item contents and branch flag of `core::LcaKp::AnswerWitness`.
  /// Certifying engines store the witness so a cache hit can emit a full
  /// certificate record without touching the oracle (the hit path performs
  /// zero oracle reads, and certification must not change that).
  struct Entry {
    bool answer = false;
    bool has_witness = false;
    bool large = false;          ///< witness: norm_profit > eps^2 branch
    std::int64_t profit = 0;     ///< witness: raw item profit
    std::int64_t weight = 0;     ///< witness: raw item weight
    /// Generation (= epoch) this answer was derived under.  Puts carrying a
    /// generation older than the cache's current one are dropped; entries
    /// found with an older generation on get are dropped as misses.
    std::uint64_t generation = 0;
  };

  struct Hit {
    bool answer = false;
    /// This hit was sampled for a paranoia re-evaluation: the caller should
    /// recompute the answer and call `record_paranoia`.
    bool paranoia_due = false;
    /// Witness fields (valid when `has_witness`; see Entry).
    bool has_witness = false;
    bool large = false;
    std::int64_t profit = 0;
    std::int64_t weight = 0;
    /// Generation the entry was stored under; always the cache's current
    /// generation at read time (older entries never hit).
    std::uint64_t generation = 0;
  };

  /// Looks `item` up, refreshing its LRU position on a hit.
  [[nodiscard]] std::optional<Hit> get(std::size_t item);

  /// Inserts or refreshes `item`, evicting the shard's LRU tail when full.
  /// Dropped entirely when `entry.generation` is older than the cache's
  /// current generation.
  void put(std::size_t item, const Entry& entry);
  /// Witness-free insert (non-certifying callers), stamped with the current
  /// generation.
  void put(std::size_t item, bool answer) {
    put(item, Entry{.answer = answer, .generation = generation()});
  }

  /// One insert of a `put_batch`.
  struct PutItem {
    std::size_t item = 0;
    Entry entry;
  };

  /// Batch lookup for the vectorized answer path: groups `items` by shard
  /// and takes each shard mutex ONCE per batch (the per-request path takes
  /// it once per item), then bulk-updates the counters.  `out[l]` is exactly
  /// what `get(items[l])` would have returned.  Counter totals — hits,
  /// misses, and the number of paranoia-due hits per batch — are identical
  /// to issuing the gets one by one (hit numbers `base+1 ... base+k` are
  /// claimed as one block, preserving the every-Nth paranoia cadence);
  /// only *which* lane of a batch draws a given hit number may differ, since
  /// lanes are visited in shard order rather than request order.
  void get_batch(std::span<const std::size_t> items,
                 std::vector<std::optional<Hit>>& out);

  /// Batch insert, same shard-grouped single-lock discipline as `get_batch`;
  /// equivalent to calling `put` per element in order.
  void put_batch(std::span<const PutItem> puts);

  /// Reports the result of a paranoia re-evaluation (`consistent` = the
  /// recomputed answer matched the cached one).
  void record_paranoia(bool consistent);

  // --- epoch-scoped invalidation -----------------------------------------
  /// Raises the current generation to `generation` (monotone; lower or equal
  /// values are ignored and return false).  O(1): no shard is touched —
  /// entries of older generations die lazily on their next lookup or
  /// eviction.  Counts one invalidation event when the generation moves.
  bool bump_generation(std::uint64_t generation);
  /// Invalidates everything currently cached: bumps the generation by one.
  void clear() { (void)bump_generation(generation() + 1); }
  [[nodiscard]] std::uint64_t generation() const noexcept;
  /// Invalidation events (generation bumps), mirrored as
  /// `serve_cache_invalidations_total`.
  [[nodiscard]] std::uint64_t invalidations() const noexcept;

  // Counter readouts (also exported as `serve_cache_*` registry families).
  [[nodiscard]] std::uint64_t hits() const noexcept;
  [[nodiscard]] std::uint64_t misses() const noexcept;
  [[nodiscard]] std::uint64_t evictions() const noexcept;
  [[nodiscard]] std::uint64_t paranoia_checks() const noexcept;
  [[nodiscard]] std::uint64_t paranoia_violations() const noexcept;

  /// Entries currently cached (sums shard sizes; racy but exact at rest).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] const AnswerCacheConfig& config() const noexcept { return config_; }

 private:
  struct Shard {
    std::mutex mutex;
    std::size_t capacity = 0;
    /// Front = most recently used; entries are (item, cached value).
    std::list<std::pair<std::size_t, Entry>> lru;
    std::unordered_map<std::size_t,
                       std::list<std::pair<std::size_t, Entry>>::iterator>
        index;
  };

  [[nodiscard]] Shard& shard_for(std::size_t item) noexcept;

  AnswerCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> paranoia_checks_{0};
  std::atomic<std::uint64_t> paranoia_violations_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> invalidations_{0};

  metrics::Counter* hits_total_;
  metrics::Counter* misses_total_;
  metrics::Counter* evictions_total_;
  metrics::Counter* paranoia_checks_total_;
  metrics::Counter* paranoia_violations_total_;
  metrics::Counter* invalidations_total_;
};

}  // namespace lcaknap::serve

#endif  // LCAKNAP_SERVE_ANSWER_CACHE_H
