#include "serve/request_queue.h"

#include <stdexcept>
#include <utility>

namespace lcaknap::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RequestQueue: capacity must be >= 1");
  }
}

bool RequestQueue::try_push(Request&& request) {
  {
    const std::lock_guard lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(request));
  }
  ready_.notify_one();
  return true;
}

bool RequestQueue::pop_for(Request& out, std::chrono::microseconds wait) {
  std::unique_lock lock(mutex_);
  if (!ready_.wait_for(lock, wait, [this] { return closed_ || !queue_.empty(); })) {
    return false;  // timeout with the queue still open and empty
  }
  if (queue_.empty()) return false;  // closed and drained
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::size_t RequestQueue::pop_all(std::deque<Request>& out) {
  const std::lock_guard lock(mutex_);
  const std::size_t moved = queue_.size();
  if (out.empty()) {
    out.swap(queue_);
  } else {
    while (!queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  return moved;
}

void RequestQueue::close() {
  {
    const std::lock_guard lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool RequestQueue::closed() const {
  const std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace lcaknap::serve
