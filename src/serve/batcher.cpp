#include "serve/batcher.h"

#include <stdexcept>
#include <utility>

namespace lcaknap::serve {

Batcher::Batcher(const BatcherConfig& config) : config_(config) {
  if (config.max_batch_size == 0) {
    throw std::invalid_argument("Batcher: max_batch_size must be >= 1");
  }
  if (config.max_linger.count() < 0) {
    throw std::invalid_argument("Batcher: max_linger must be >= 0");
  }
}

void Batcher::add(Request&& request, Clock::time_point now,
                  std::vector<Batch>& ready) {
  auto [it, inserted] = open_.try_emplace(request.item);
  Batch& batch = it->second;
  if (inserted) {
    batch.item = request.item;
    batch.opened_at = now;
  }
  batch.requests.push_back(std::move(request));
  ++pending_;
  if (batch.requests.size() >= config_.max_batch_size) {
    pending_ -= batch.requests.size();
    ready.push_back(std::move(batch));
    open_.erase(it);
  }
}

void Batcher::collect_expired(Clock::time_point now, std::vector<Batch>& ready) {
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->second.opened_at >= config_.max_linger) {
      pending_ -= it->second.requests.size();
      ready.push_back(std::move(it->second));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void Batcher::flush_all(std::vector<Batch>& ready) {
  for (auto& [item, batch] : open_) {
    pending_ -= batch.requests.size();
    ready.push_back(std::move(batch));
  }
  open_.clear();
}

}  // namespace lcaknap::serve
