#include "core/lca_kp.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <stdexcept>

#include "iky/partition.h"
#include "iky/value_approx.h"
#include "reproducible/rquantile.h"
#include "util/stats.h"

namespace lcaknap::core {

LcaKpParams resolve_params(const LcaKpConfig& config) {
  if (!(config.eps > 0.0 && config.eps < 1.0)) {
    throw std::invalid_argument("LcaKp: eps must be in (0, 1)");
  }
  if (config.domain_bits < 4 || config.domain_bits > 48) {
    throw std::invalid_argument("LcaKp: domain_bits must be in [4, 48]");
  }
  const double eps = config.eps;
  LcaKpParams params;
  if (config.paper_constants) {
    // Algorithm 2, line 5.
    params.tau = eps * eps / 5.0;
    params.rho = eps * eps / 18.0;
  } else {
    // Calibrated: eps-scale instead of eps^2-scale, so the sampling budgets
    // below are affordable; the consistency benches measure what this buys.
    params.tau = eps / 2.0;
    params.rho = eps / 6.0;
  }
  if (config.tau > 0.0) params.tau = config.tau;
  if (config.rho > 0.0) params.rho = config.rho;
  params.beta = config.beta > 0.0 ? config.beta : params.rho / 2.0;

  params.large_samples = config.large_samples > 0
                             ? config.large_samples
                             : iky::coupon_collector_samples(eps * eps, 3);
  params.t_max = std::max(1, static_cast<int>(std::floor(1.0 / eps)));

  if (config.quantile_samples > 0) {
    params.quantile_samples = config.quantile_samples;
  } else {
    // The reproducible search probes `levels` rounds; per round, boundary
    // estimates near the target risk straddling a rounding-grid edge with
    // probability ~2*delta/spacing.  Size the sample so the per-quantile
    // disagreement budget rho is met, then cap (the uncapped theoretical
    // requirement — rmedian_sample_size — is reported by benches instead).
    reproducible::RMedianParams mp;
    mp.domain_size = (std::int64_t{1} << config.domain_bits) + 2;
    mp.tau = params.tau / 2.0;
    mp.rho = params.rho;
    mp.beta = params.beta;
    mp.branching = config.branching;
    const int levels = reproducible::rmedian_depth(mp);
    const double spacing = params.tau / 2.0;
    const double delta =
        spacing * params.rho / (4.0 * static_cast<double>(std::max(levels, 1)));
    const std::size_t want = util::dkw_sample_size(delta, params.beta);
    params.quantile_samples =
        std::clamp<std::size_t>(want, 4'096, config.max_quantile_samples);
  }
  return params;
}

LcaKp::LcaKp(const oracle::InstanceAccess& access, const LcaKpConfig& config)
    : access_(&access),
      config_(config),
      params_(resolve_params(config)),
      domain_(config.domain_bits),
      prf_(config.seed) {}

LcaKpRun LcaKp::run_pipeline(util::Xoshiro256& sample_rng) const {
  const double eps = config_.eps;
  const double eps2 = eps * eps;
  LcaKpRun run;
  // Count this run's draws locally: the oracle's global counter is shared
  // across concurrently executing replicas, so deltas of it would interleave.
  std::uint64_t samples_used = 0;

  // ---- Step 1 (lines 1-3): collect the large items. ----------------------
  std::map<std::size_t, iky::NormLargeItem> found;
  for (std::size_t s = 0; s < params_.large_samples; ++s) {
    const auto draw = access_->weighted_sample(sample_rng);
    ++samples_used;
    const double p = access_->norm_profit(draw.item);
    if (p <= eps2) continue;
    iky::NormLargeItem rec;
    rec.index = draw.index;
    rec.profit = p;
    rec.weight = access_->norm_weight(draw.item);
    rec.efficiency = access_->efficiency(draw.item);
    found.emplace(draw.index, rec);
  }
  std::vector<iky::NormLargeItem> large;
  large.reserve(found.size());
  for (const auto& [index, rec] : found) {
    large.push_back(rec);
    run.large_mass += rec.profit;
  }

  // ---- Step 2 (lines 4-17): EPS via reproducible quantiles. --------------
  if (1.0 - run.large_mass >= eps) {
    run.q = (eps + eps2 / 2.0) / (1.0 - run.large_mass);
    run.t = static_cast<int>(std::floor(1.0 / run.q));
    std::vector<std::int64_t> efficiencies;
    efficiencies.reserve(params_.quantile_samples);
    for (std::size_t s = 0; s < params_.quantile_samples; ++s) {
      const auto draw = access_->weighted_sample(sample_rng);
      ++samples_used;
      if (access_->norm_profit(draw.item) > eps2) continue;  // line 7
      efficiencies.push_back(domain_.to_grid(access_->efficiency(draw.item)));
    }
    if (!efficiencies.empty() && run.t >= 1) {
      const util::EmpiricalCdfInt ecdf(efficiencies);
      reproducible::RQuantileParams rq;
      rq.domain_size = domain_.size();
      rq.tau = params_.tau;
      rq.rho = params_.rho;
      rq.beta = params_.beta;
      rq.branching = config_.branching;
      std::int64_t previous = domain_.size() - 1;
      for (int k = 1; k <= run.t; ++k) {
        const double p = std::clamp(1.0 - static_cast<double>(k) * run.q,
                                    1e-6, 1.0 - 1e-6);
        std::int64_t threshold = 0;
        if (config_.reproducible_quantiles) {
          threshold = reproducible::rquantile(ecdf, p, rq, prf_,
                                              static_cast<std::uint64_t>(k));
        } else {
          // Ablation: the [IKY12] estimator — accurate but irreproducible.
          threshold = ecdf.quantile(p);
        }
        threshold = std::min(threshold, previous);  // keep non-increasing
        previous = threshold;
        run.thresholds_grid.push_back(threshold);
      }
      // Lines 11-14: drop the last threshold when it falls below eps^2.
      const std::int64_t eps2_grid = domain_.to_grid(eps2);
      if (!run.thresholds_grid.empty() && run.thresholds_grid.back() < eps2_grid) {
        run.thresholds_grid.pop_back();
      }
      run.thresholds.reserve(run.thresholds_grid.size());
      for (const auto g : run.thresholds_grid) {
        run.thresholds.push_back(domain_.from_grid(g));
      }
    }
  }

  // ---- Steps 3-4 (lines 18-19): construct Ĩ and convert its greedy. ------
  const iky::TildeInstance tilde =
      iky::construct_tilde(large, run.thresholds, eps, access_->norm_capacity());
  run.tilde_size = tilde.items.size();
  const ConvertGreedyResult cg = convert_greedy(tilde, run.thresholds);
  run.index_large.insert(cg.index_large.begin(), cg.index_large.end());
  run.singleton = cg.singleton;
  run.degenerate = cg.degenerate;
  if (cg.e_small_idx >= 0) {
    run.e_small_grid = run.thresholds_grid.at(static_cast<std::size_t>(cg.e_small_idx));
  }
  run.samples_used = samples_used;
  return run;
}

bool LcaKp::decide(const LcaKpRun& run, std::size_t index, double norm_profit,
                   double efficiency) const {
  // Lines 20-24 of Algorithm 2.
  if (norm_profit > config_.eps * config_.eps) {
    return run.index_large.contains(index);
  }
  return run.e_small_grid >= 0 && domain_.to_grid(efficiency) >= run.e_small_grid;
}

bool LcaKp::answer_from(const LcaKpRun& run, std::size_t i) const {
  const knapsack::Item item = access_->query(i);
  return decide(run, i, access_->norm_profit(item), access_->efficiency(item));
}

bool LcaKp::answer(std::size_t i, util::Xoshiro256& sample_rng) const {
  const LcaKpRun run = run_pipeline(sample_rng);
  return answer_from(run, i);
}

void save_run(const LcaKpRun& run, std::ostream& os) {
  os << "lcakp-run 1\n";
  std::vector<std::size_t> sorted(run.index_large.begin(), run.index_large.end());
  std::sort(sorted.begin(), sorted.end());
  os << sorted.size();
  for (const auto i : sorted) os << " " << i;
  os << "\n"
     << run.e_small_grid << " " << (run.singleton ? 1 : 0) << " "
     << (run.degenerate ? 1 : 0) << "\n";
  os << run.thresholds_grid.size();
  for (const auto g : run.thresholds_grid) os << " " << g;
  os << "\n";
}

LcaKpRun load_run(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "lcakp-run" || version != 1) {
    throw std::runtime_error("load_run: bad header");
  }
  LcaKpRun run;
  std::size_t large_count = 0;
  if (!(is >> large_count)) throw std::runtime_error("load_run: bad large count");
  for (std::size_t k = 0; k < large_count; ++k) {
    std::size_t index = 0;
    if (!(is >> index)) throw std::runtime_error("load_run: truncated large list");
    run.index_large.insert(index);
  }
  int singleton = 0, degenerate = 0;
  if (!(is >> run.e_small_grid >> singleton >> degenerate)) {
    throw std::runtime_error("load_run: bad rule line");
  }
  run.singleton = singleton != 0;
  run.degenerate = degenerate != 0;
  std::size_t threshold_count = 0;
  if (!(is >> threshold_count)) throw std::runtime_error("load_run: bad EPS count");
  run.thresholds_grid.resize(threshold_count);
  for (auto& g : run.thresholds_grid) {
    if (!(is >> g)) throw std::runtime_error("load_run: truncated EPS");
  }
  return run;
}

}  // namespace lcaknap::core
