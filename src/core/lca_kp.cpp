#include "core/lca_kp.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "iky/partition.h"
#include "iky/value_approx.h"
#include "reproducible/rquantile.h"
#include "util/flat_index_map.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace lcaknap::core {

namespace {

/// Cached normalization constants for the warm-up's sampling loops.  The
/// access object's `norm_profit`/`efficiency` helpers make a virtual call
/// per read of the (free) metadata; over millions of draws that dominates
/// the arithmetic.  This mirror performs *exactly* the same double
/// operations in the same order, so classifications agree bit-for-bit with
/// the per-query path (`decide` reads through the access object).
struct NormContext {
  double total_profit;
  double total_weight;

  explicit NormContext(const oracle::InstanceAccess& access)
      : total_profit(static_cast<double>(access.total_profit())),
        total_weight(static_cast<double>(access.total_weight())) {}

  [[nodiscard]] double norm_profit(const knapsack::Item& it) const noexcept {
    return static_cast<double>(it.profit) / total_profit;
  }
  [[nodiscard]] double norm_weight(const knapsack::Item& it) const noexcept {
    return static_cast<double>(it.weight) / total_weight;
  }
  [[nodiscard]] double efficiency(const knapsack::Item& it) const noexcept {
    if (it.weight == 0) return std::numeric_limits<double>::infinity();
    return norm_profit(it) / norm_weight(it);
  }
};

/// Large-item record for one weighted draw, or nothing if the item is small.
[[nodiscard]] bool record_if_large(const oracle::WeightedDraw& draw,
                                   const NormContext& norm, double eps2,
                                   iky::NormLargeItem& rec) noexcept {
  const double p = norm.norm_profit(draw.item);
  if (p <= eps2) return false;
  rec.index = draw.index;
  rec.profit = p;
  rec.weight = norm.norm_weight(draw.item);
  rec.efficiency = norm.efficiency(draw.item);
  return true;
}

/// Sorted-extract of a dedup table into the `large` vector, accumulating the
/// large mass (the order `std::map` used to provide).
void extract_large(const util::FlatIndexMap<iky::NormLargeItem>& found,
                   std::vector<iky::NormLargeItem>& large, double& mass) {
  const auto entries = found.extract_sorted();
  large.reserve(entries.size());
  for (const auto& [index, rec] : entries) {
    large.push_back(rec);
    mass += rec.profit;
  }
}

/// Warm-up PRF streams: one fresh-randomness substream per (phase, shard).
enum WarmupStream : std::uint64_t {
  kLargeSweepStream = 0,
  kQuantileSweepStream = 1,
};

/// Number of draws shard `s` performs out of `total` (even split, remainder
/// spread over the leading shards — a pure function of (total, s)).
[[nodiscard]] std::size_t shard_quota(std::size_t total, std::size_t shard,
                                      std::size_t shards) noexcept {
  return total / shards + (shard < total % shards ? 1 : 0);
}

}  // namespace

LcaKpParams resolve_params(const LcaKpConfig& config) {
  if (!(config.eps > 0.0 && config.eps < 1.0)) {
    throw std::invalid_argument("LcaKp: eps must be in (0, 1)");
  }
  if (config.domain_bits < 4 || config.domain_bits > 48) {
    throw std::invalid_argument("LcaKp: domain_bits must be in [4, 48]");
  }
  const double eps = config.eps;
  LcaKpParams params;
  if (config.paper_constants) {
    // Algorithm 2, line 5.
    params.tau = eps * eps / 5.0;
    params.rho = eps * eps / 18.0;
  } else {
    // Calibrated: eps-scale instead of eps^2-scale, so the sampling budgets
    // below are affordable; the consistency benches measure what this buys.
    params.tau = eps / 2.0;
    params.rho = eps / 6.0;
  }
  if (config.tau > 0.0) params.tau = config.tau;
  if (config.rho > 0.0) params.rho = config.rho;
  params.beta = config.beta > 0.0 ? config.beta : params.rho / 2.0;

  params.large_samples = config.large_samples > 0
                             ? config.large_samples
                             : iky::coupon_collector_samples(eps * eps, 3);
  params.t_max = std::max(1, static_cast<int>(std::floor(1.0 / eps)));

  if (config.quantile_samples > 0) {
    params.quantile_samples = config.quantile_samples;
  } else {
    // The reproducible search probes `levels` rounds; per round, boundary
    // estimates near the target risk straddling a rounding-grid edge with
    // probability ~2*delta/spacing.  Size the sample so the per-quantile
    // disagreement budget rho is met, then cap (the uncapped theoretical
    // requirement — rmedian_sample_size — is reported by benches instead).
    reproducible::RMedianParams mp;
    mp.domain_size = (std::int64_t{1} << config.domain_bits) + 2;
    mp.tau = params.tau / 2.0;
    mp.rho = params.rho;
    mp.beta = params.beta;
    mp.branching = config.branching;
    const int levels = reproducible::rmedian_depth(mp);
    const double spacing = params.tau / 2.0;
    const double delta =
        spacing * params.rho / (4.0 * static_cast<double>(std::max(levels, 1)));
    const std::size_t want = util::dkw_sample_size(delta, params.beta);
    params.quantile_samples =
        std::clamp<std::size_t>(want, 4'096, config.max_quantile_samples);
  }
  return params;
}

LcaKp::LcaKp(const oracle::InstanceAccess& access, const LcaKpConfig& config)
    : access_(&access),
      config_(config),
      params_(resolve_params(config)),
      domain_(config.domain_bits),
      prf_(config.seed) {}

LcaKpRun LcaKp::run_pipeline(util::Xoshiro256& sample_rng) const {
  const double eps = config_.eps;
  const double eps2 = eps * eps;
  LcaKpRun run;
  // Count this run's draws locally: the oracle's global counter is shared
  // across concurrently executing replicas, so deltas of it would interleave.
  std::uint64_t samples_used = 0;
  const NormContext norm(*access_);

  // ---- Step 1 (lines 1-3): collect the large items. ----------------------
  util::FlatIndexMap<iky::NormLargeItem> found(64);
  iky::NormLargeItem rec;
  for (std::size_t s = 0; s < params_.large_samples; ++s) {
    const auto draw = access_->weighted_sample(sample_rng);
    ++samples_used;
    if (record_if_large(draw, norm, eps2, rec)) found.emplace(draw.index, rec);
  }
  std::vector<iky::NormLargeItem> large;
  extract_large(found, large, run.large_mass);

  // ---- Step 2 (lines 4-17): EPS via reproducible quantiles. --------------
  if (1.0 - run.large_mass >= eps) {
    run.q = (eps + eps2 / 2.0) / (1.0 - run.large_mass);
    run.t = static_cast<int>(std::floor(1.0 / run.q));
    std::vector<std::int64_t> efficiencies;
    efficiencies.reserve(params_.quantile_samples);
    for (std::size_t s = 0; s < params_.quantile_samples; ++s) {
      const auto draw = access_->weighted_sample(sample_rng);
      ++samples_used;
      if (norm.norm_profit(draw.item) > eps2) continue;  // line 7
      efficiencies.push_back(domain_.to_grid(norm.efficiency(draw.item)));
    }
    compute_thresholds(run, efficiencies);
  }

  finalize_run(run, large);
  run.samples_used = samples_used;
  return run;
}

LcaKpRun LcaKp::run_warmup(std::uint64_t tape_seed, std::size_t threads,
                           util::ThreadPool* pool, WarmupTrace* trace) const {
  const double eps = config_.eps;
  const double eps2 = eps * eps;
  if (threads == 0) threads = config_.warmup_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  constexpr std::size_t shards = kWarmupShards;
  // The fresh-randomness tape, made random-access: shard s of phase f draws
  // from the substream seeded by PRF(tape_seed)(f, s).  The layout depends
  // only on `tape_seed`, never on `threads` — that is the whole consistency
  // argument (Lemma 4.9 needs (L(Ĩ), EPS) to be a pure function of the
  // instance, the shared seed, and the warm-up's sample outcome; pinning the
  // sample outcome to the tape makes the thread count irrelevant).
  const util::Prf tape(util::mix64(tape_seed));
  const NormContext norm(*access_);

  // Runs shard bodies [0, shards) on the requested parallelism; results
  // land in per-shard slots, so shard functions never share mutable state.
  const auto for_each_shard = [&](const std::function<void(std::size_t)>& body) {
    if (threads <= 1) {
      for (std::size_t s = 0; s < shards; ++s) body(s);
    } else if (pool != nullptr) {
      pool->parallel_for(shards, body);
    } else {
      util::ThreadPool owned(threads);
      owned.parallel_for(shards, body);
    }
  };

  LcaKpRun run;

  // ---- Step 1 (lines 1-3): sharded large-item sweep. ---------------------
  std::vector<util::FlatIndexMap<iky::NormLargeItem>> shard_found(
      shards, util::FlatIndexMap<iky::NormLargeItem>(16));
  for_each_shard([&](std::size_t s) {
    util::Xoshiro256 rng(tape.word(kLargeSweepStream, s));
    const std::size_t quota = shard_quota(params_.large_samples, s, shards);
    iky::NormLargeItem rec;
    for (std::size_t i = 0; i < quota; ++i) {
      const auto draw = access_->weighted_sample(rng);
      if (record_if_large(draw, norm, eps2, rec)) {
        shard_found[s].emplace(draw.index, rec);
      }
    }
  });
  // Merge in shard order.  Duplicate keys across shards carry identical
  // records (the same item read through the same metadata), so first-wins
  // merging is order-insensitive in value — but the fixed order makes the
  // determinism argument syntactic rather than semantic.
  util::FlatIndexMap<iky::NormLargeItem> found(64);
  for (std::size_t s = 0; s < shards; ++s) {
    for (const auto& [index, rec] : shard_found[s].extract_sorted()) {
      found.emplace(index, rec);
    }
  }
  std::vector<iky::NormLargeItem> large;
  extract_large(found, large, run.large_mass);
  std::uint64_t samples_used = params_.large_samples;
  if (trace != nullptr) {
    trace->tape_seed = tape_seed;
    trace->large_drawn.clear();
    trace->large_drawn.reserve(large.size());
    for (const auto& rec : large) trace->large_drawn.push_back(rec.index);
    trace->quantile_swept = false;
    trace->quantile_draws.clear();
  }

  // ---- Step 2 (lines 4-17): sharded quantile draw, then EPS. -------------
  if (1.0 - run.large_mass >= eps) {
    run.q = (eps + eps2 / 2.0) / (1.0 - run.large_mass);
    run.t = static_cast<int>(std::floor(1.0 / run.q));
    std::vector<std::vector<std::int64_t>> shard_effs(shards);
    std::vector<std::vector<std::size_t>> shard_trace_idx(
        trace != nullptr ? shards : 0);
    for_each_shard([&](std::size_t s) {
      util::Xoshiro256 rng(tape.word(kQuantileSweepStream, s));
      const std::size_t quota = shard_quota(params_.quantile_samples, s, shards);
      auto& effs = shard_effs[s];
      effs.reserve(quota);
      for (std::size_t i = 0; i < quota; ++i) {
        const auto draw = access_->weighted_sample(rng);
        if (norm.norm_profit(draw.item) > eps2) continue;  // line 7
        effs.push_back(domain_.to_grid(norm.efficiency(draw.item)));
        if (trace != nullptr) shard_trace_idx[s].push_back(draw.index);
      }
    });
    if (trace != nullptr) {
      trace->quantile_swept = true;
      std::unordered_map<std::size_t, std::uint64_t> counts;
      for (const auto& idxs : shard_trace_idx) {
        for (const auto i : idxs) ++counts[i];
      }
      trace->quantile_draws.assign(counts.begin(), counts.end());
      std::sort(trace->quantile_draws.begin(), trace->quantile_draws.end());
    }
    std::size_t kept = 0;
    for (const auto& effs : shard_effs) kept += effs.size();
    std::vector<std::int64_t> efficiencies;
    efficiencies.reserve(kept);
    for (const auto& effs : shard_effs) {  // concatenate in shard order
      efficiencies.insert(efficiencies.end(), effs.begin(), effs.end());
    }
    compute_thresholds(run, efficiencies);
    samples_used += params_.quantile_samples;
  }

  finalize_run(run, large);
  run.samples_used = samples_used;
  return run;
}

LcaKpRun LcaKp::complete_run_from_sweeps(
    std::span<const iky::NormLargeItem> large, double large_mass,
    std::span<const std::int64_t> efficiencies) const {
  const double eps = config_.eps;
  const double eps2 = eps * eps;
  LcaKpRun run;
  run.large_mass = large_mass;
  std::uint64_t samples_used = params_.large_samples;
  if (1.0 - run.large_mass >= eps) {
    run.q = (eps + eps2 / 2.0) / (1.0 - run.large_mass);
    run.t = static_cast<int>(std::floor(1.0 / run.q));
    compute_thresholds(run, efficiencies);
    samples_used += params_.quantile_samples;
  }
  finalize_run(run, large);
  run.samples_used = samples_used;
  return run;
}

LcaKpRun LcaKp::complete_run_from_sweeps(
    std::span<const iky::NormLargeItem> large, double large_mass,
    std::span<const util::WeightedValue> weighted_efficiencies) const {
  const double eps = config_.eps;
  const double eps2 = eps * eps;
  LcaKpRun run;
  run.large_mass = large_mass;
  std::uint64_t samples_used = params_.large_samples;
  if (1.0 - run.large_mass >= eps) {
    run.q = (eps + eps2 / 2.0) / (1.0 - run.large_mass);
    run.t = static_cast<int>(std::floor(1.0 / run.q));
    if (!weighted_efficiencies.empty() && run.t >= 1) {
      const util::EmpiricalCdfInt ecdf(weighted_efficiencies, domain_.size());
      if (ecdf.size() > 0) compute_thresholds_from_cdf(run, ecdf);
    }
    samples_used += params_.quantile_samples;
  }
  finalize_run(run, large);
  run.samples_used = samples_used;
  return run;
}

void LcaKp::compute_thresholds(LcaKpRun& run,
                               std::span<const std::int64_t> efficiencies) const {
  if (efficiencies.empty() || run.t < 1) return;
  // Grid values are already cells of the finite domain, so the empirical CDF
  // builds by counting sort: O(n + |X|) against the former O(n log n) full
  // sort of the multiset.
  const util::EmpiricalCdfInt ecdf(efficiencies, domain_.size());
  compute_thresholds_from_cdf(run, ecdf);
}

void LcaKp::compute_thresholds_from_cdf(LcaKpRun& run,
                                        const util::EmpiricalCdfInt& ecdf) const {
  reproducible::RQuantileParams rq;
  rq.domain_size = domain_.size();
  rq.tau = params_.tau;
  rq.rho = params_.rho;
  rq.beta = params_.beta;
  rq.branching = config_.branching;
  std::int64_t previous = domain_.size() - 1;
  for (int k = 1; k <= run.t; ++k) {
    const double p = std::clamp(1.0 - static_cast<double>(k) * run.q,
                                1e-6, 1.0 - 1e-6);
    std::int64_t threshold = 0;
    if (config_.reproducible_quantiles) {
      threshold = reproducible::rquantile(ecdf, p, rq, prf_,
                                          static_cast<std::uint64_t>(k));
    } else {
      // Ablation: the [IKY12] estimator — accurate but irreproducible.
      threshold = ecdf.quantile(p);
    }
    threshold = std::min(threshold, previous);  // keep non-increasing
    previous = threshold;
    run.thresholds_grid.push_back(threshold);
  }
  // Lines 11-14: drop the last threshold when it falls below eps^2.
  const std::int64_t eps2_grid = domain_.to_grid(config_.eps * config_.eps);
  if (!run.thresholds_grid.empty() && run.thresholds_grid.back() < eps2_grid) {
    run.thresholds_grid.pop_back();
  }
  run.thresholds.reserve(run.thresholds_grid.size());
  for (const auto g : run.thresholds_grid) {
    run.thresholds.push_back(domain_.from_grid(g));
  }
}

void LcaKp::finalize_run(LcaKpRun& run,
                         std::span<const iky::NormLargeItem> large) const {
  // ---- Steps 3-4 (lines 18-19): construct Ĩ and convert its greedy. ------
  const iky::TildeInstance tilde =
      iky::construct_tilde(large, run.thresholds, config_.eps,
                           access_->norm_capacity());
  run.tilde_size = tilde.items.size();
  const ConvertGreedyResult cg = convert_greedy(tilde, run.thresholds);
  run.index_large.insert(cg.index_large.begin(), cg.index_large.end());
  run.singleton = cg.singleton;
  run.degenerate = cg.degenerate;
  if (cg.e_small_idx >= 0) {
    run.e_small_grid = run.thresholds_grid.at(static_cast<std::size_t>(cg.e_small_idx));
  }
}

std::uint64_t run_digest(const LcaKpRun& run) {
  std::uint64_t h = 0x243F6A8885A308D3ULL;  // pi, nothing up the sleeve
  const auto absorb = [&h](std::uint64_t word) { h = util::mix64(h ^ word); };
  std::vector<std::size_t> sorted(run.index_large.begin(), run.index_large.end());
  std::sort(sorted.begin(), sorted.end());
  absorb(sorted.size());
  for (const auto i : sorted) absorb(static_cast<std::uint64_t>(i));
  absorb(static_cast<std::uint64_t>(run.e_small_grid));
  absorb((run.singleton ? 2u : 0u) | (run.degenerate ? 1u : 0u));
  absorb(run.thresholds_grid.size());
  for (const auto g : run.thresholds_grid) absorb(static_cast<std::uint64_t>(g));
  return h;
}

bool LcaKp::decide(const LcaKpRun& run, std::size_t index, double norm_profit,
                   double efficiency) const {
  // Lines 20-24 of Algorithm 2.
  if (norm_profit > config_.eps * config_.eps) {
    return run.index_large.contains(index);
  }
  return run.e_small_grid >= 0 && domain_.to_grid(efficiency) >= run.e_small_grid;
}

bool LcaKp::answer_from(const LcaKpRun& run, std::size_t i) const {
  const knapsack::Item item = access_->query(i);
  return decide(run, i, access_->norm_profit(item), access_->efficiency(item));
}

bool LcaKp::answer_with_witness(const LcaKpRun& run, std::size_t i,
                                AnswerWitness& witness) const {
  const knapsack::Item item = access_->query(i);
  witness.profit = item.profit;
  witness.weight = item.weight;
  witness.large = access_->norm_profit(item) > config_.eps * config_.eps;
  witness.answer =
      decide(run, i, access_->norm_profit(item), access_->efficiency(item));
  return witness.answer;
}

bool LcaKp::answer(std::size_t i, util::Xoshiro256& sample_rng) const {
  const LcaKpRun run = run_pipeline(sample_rng);
  return answer_from(run, i);
}

void save_run(const LcaKpRun& run, std::ostream& os) {
  os << "lcakp-run 1\n";
  std::vector<std::size_t> sorted(run.index_large.begin(), run.index_large.end());
  std::sort(sorted.begin(), sorted.end());
  os << sorted.size();
  for (const auto i : sorted) os << " " << i;
  os << "\n"
     << run.e_small_grid << " " << (run.singleton ? 1 : 0) << " "
     << (run.degenerate ? 1 : 0) << "\n";
  os << run.thresholds_grid.size();
  for (const auto g : run.thresholds_grid) os << " " << g;
  os << "\n";
}

LcaKpRun load_run(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "lcakp-run" || version != 1) {
    throw std::runtime_error("load_run: bad header");
  }
  LcaKpRun run;
  std::size_t large_count = 0;
  if (!(is >> large_count)) throw std::runtime_error("load_run: bad large count");
  for (std::size_t k = 0; k < large_count; ++k) {
    std::size_t index = 0;
    if (!(is >> index)) throw std::runtime_error("load_run: truncated large list");
    run.index_large.insert(index);
  }
  int singleton = 0, degenerate = 0;
  if (!(is >> run.e_small_grid >> singleton >> degenerate)) {
    throw std::runtime_error("load_run: bad rule line");
  }
  run.singleton = singleton != 0;
  run.degenerate = degenerate != 0;
  std::size_t threshold_count = 0;
  if (!(is >> threshold_count)) throw std::runtime_error("load_run: bad EPS count");
  run.thresholds_grid.resize(threshold_count);
  for (auto& g : run.thresholds_grid) {
    if (!(is >> g)) throw std::runtime_error("load_run: truncated EPS");
  }
  return run;
}

}  // namespace lcaknap::core
