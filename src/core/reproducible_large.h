#ifndef LCAKNAP_CORE_REPRODUCIBLE_LARGE_H
#define LCAKNAP_CORE_REPRODUCIBLE_LARGE_H

#include <cstdint>
#include <vector>

#include "oracle/access.h"
#include "util/rng.h"

/// \file reproducible_large.h
/// Extension: large-item discovery under *index-only* weighted sampling.
///
/// LCA-KP's step 1 reads every sampled item to classify it, which is fine in
/// the paper's model.  In a strictly weaker model where the sampling service
/// returns only *indices* (payload reads are a separate, rationed resource),
/// coupon collection cannot classify at all.  But under weighted sampling the
/// frequency of index i *is* its normalized profit, so the reproducible
/// heavy-hitters primitive of [ILPS22] recovers L(I) = {p_i > eps^2} from
/// frequencies alone — and, because its acceptance threshold is randomized
/// from the shared seed, two replicas return the *identical* index set with
/// high probability even when items sit exactly at the eps^2 boundary.
///
/// This realises the paper's Section 5 suggestion that the LCA/reproducibility
/// interplay extends beyond the quantile step.  Exercised by
/// tests/core/test_reproducible_large.cpp and bench_rmedian's final table.

namespace lcaknap::core {

struct ReproducibleLargeConfig {
  double eps = 0.25;
  /// Draws taken; 0 = auto (enough that frequency estimates resolve the
  /// eps^2/2-wide randomized threshold window).
  std::size_t samples = 0;
  /// Half-width of the randomized threshold window around eps^2, as a
  /// fraction of eps^2.  Items with normalized profit outside
  /// eps^2 * (1 +- window) are always classified deterministically.
  double window = 0.5;
};

struct ReproducibleLargeResult {
  /// Indices accepted as large, in increasing order.
  std::vector<std::size_t> indices;
  std::uint64_t samples_used = 0;
};

/// Runs the discovery.  `prf` is the shared seed (replicas must agree on it);
/// `rng` is the run's fresh sampling randomness.  Only `weighted_sample` is
/// used — never `query`.
[[nodiscard]] ReproducibleLargeResult reproducible_large_items(
    const oracle::InstanceAccess& access, const ReproducibleLargeConfig& config,
    const util::Prf& prf, util::Xoshiro256& rng);

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_REPRODUCIBLE_LARGE_H
