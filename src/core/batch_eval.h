#ifndef LCAKNAP_CORE_BATCH_EVAL_H
#define LCAKNAP_CORE_BATCH_EVAL_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/lca_kp.h"

/// \file batch_eval.h
/// Vectorized struct-of-arrays batch evaluation of the steady-state answer
/// path (Algorithm 2, lines 20-24).
///
/// Every answer is a pure function of the shared warm state `(L(Ĩ), EPS)`
/// and one queried item — there are no cross-query dependencies (the same
/// per-query independence Fast LCAs and Reingold–Vardi exploit), so a whole
/// batch of membership queries can be evaluated lock-step:
///
///  1. **gather** — one counted `access.query(i)` per lane (the access-model
///     cost is identical to the per-request path), landing item contents in
///     struct-of-arrays columns: `profits`/`weights` (raw int64, the witness
///     fields) plus `profit_d`/`weight_d` (the same values cast to double
///     once, scalar, so the vector kernels never re-implement int64→double
///     conversion semantics);
///  2. **classify** — pure SoA math over the columns: normalized profit,
///     the branchless large/small split (`norm_profit > eps²`), efficiency,
///     and the small-branch threshold comparison.
///
/// The classify stage has three kernels sharing one contract — **the scalar
/// reference is the semantics**; a vector kernel is correct only if its
/// output (answers AND witness flags) is byte-identical on every input
/// (Lemma 4.9 extended to the vector unit; the differential fuzz suite in
/// tests/core/test_batch_eval.cpp pins it):
///
///  * `kScalar` — always built; per lane exactly the operations of
///    `LcaKp::answer_with_witness` (same divisions in the same order);
///  * `kAvx2` / `kAvx512` — compiled only under the `LCAKNAP_NATIVE` cmake
///    gate on x86-64, selected at runtime via CPU-feature detection
///    (`__builtin_cpu_supports`), never statically assumed.
///
/// **The grid-cutoff trick.** The scalar small branch computes
/// `domain.to_grid(efficiency) >= e_small_grid`, and `to_grid` calls
/// `std::log2` — not profitably vectorizable without a vector libm, and any
/// substitute polynomial would break byte-equality.  But `to_grid` is a
/// monotone non-decreasing map (log2, an affine map, floor, clamp — each
/// monotone), so the predicate is equivalent to `efficiency >= C` where
/// `C = min { e : to_grid(e) >= e_small_grid }`.  The constructor finds this
/// exact double by bisecting the bit representation of the non-negative
/// doubles (monotone in value order) with the *scalar* `to_grid` as the
/// probe, then verifies both sides of the boundary:
/// `to_grid(C) >= g` and `to_grid(pred(C)) < g`.  The hot loop is then one
/// vector compare.  Zero-weight lanes (efficiency = +inf by definition) are
/// blended to +inf before the compare so `0/0` can never produce a NaN the
/// scalar path would not have produced.
///
/// Large-branch membership (`index_large.contains(i)`) is resolved after
/// the vector pass by binary search over a sorted copy of L(Ĩ) — only for
/// lanes whose mask says "large", which Lemma 4.2 keeps few (|L(Ĩ)| ≤ 1/ε²).
///
/// Fault isolation: `gather` catches `oracle::OracleUnavailable` **per
/// lane** (`LaneStatus::kUnavailable`) so one dead item cannot poison its
/// batch siblings; the serving engine maps failed lanes onto its existing
/// degrade/error outcomes.

namespace lcaknap::core {

/// Which classify kernel runs; `batch_kernel_name` gives the metric label.
enum class BatchKernel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

[[nodiscard]] const char* batch_kernel_name(BatchKernel kernel) noexcept;

/// Per-lane gather outcome.
enum class LaneStatus : std::uint8_t {
  kOk = 0,           ///< columns hold the item; classify fills the answer
  kUnavailable = 1,  ///< oracle threw OracleUnavailable for this lane
  kError = 2,        ///< oracle threw something else for this lane
};

/// Struct-of-arrays scratch buffers, sized by `resize` and reused across
/// batches: after the first batch at the high-water size, the steady-state
/// path performs zero heap allocations (the PR-4 invariant extended to the
/// batch path).  Columns are ordinary vectors; the vector kernels use
/// unaligned loads, so no over-alignment contract is needed.
struct BatchScratch {
  std::vector<std::int64_t> profits;   ///< witness: raw profit per lane
  std::vector<std::int64_t> weights;   ///< witness: raw weight per lane
  std::vector<double> profit_d;        ///< (double)profit, cast at gather
  std::vector<double> weight_d;        ///< (double)weight, cast at gather
  std::vector<LaneStatus> status;      ///< gather outcome per lane
  std::vector<std::uint8_t> large;     ///< classify: 1 = norm_profit > eps²
  std::vector<std::uint8_t> answers;   ///< classify: membership decision
  std::size_t size = 0;                ///< active lane count

  /// Grows every column to `n` lanes (never shrinks capacity).
  void resize(std::size_t n);
};

class BatchEval {
 public:
  /// Precomputes the SoA constants (normalizers, eps², sorted L(Ĩ), and the
  /// verified small-branch cutoff) for answering against `run`.  Both `lca`
  /// and `run` must outlive this object.  Starts on `best_kernel()`.
  BatchEval(const LcaKp& lca, const LcaKpRun& run);

  /// Gather stage: one counted oracle query per lane.  Per-lane fault
  /// isolation as documented above; `scratch` is resized to `items.size()`.
  void gather(std::span<const std::size_t> items, BatchScratch& scratch) const;

  /// Classify stage on the active kernel.  Lanes whose status is not kOk
  /// keep `large = answers = 0`.
  void classify(std::span<const std::size_t> items,
                BatchScratch& scratch) const;

  /// The always-built scalar reference (the per-request semantics).
  void classify_scalar(std::span<const std::size_t> items,
                       BatchScratch& scratch) const;

  /// gather + classify.
  void evaluate(std::span<const std::size_t> items,
                BatchScratch& scratch) const {
    gather(items, scratch);
    classify(items, scratch);
  }

  [[nodiscard]] BatchKernel kernel() const noexcept { return kernel_; }
  /// Forces a kernel (benchmarks and differential tests); throws
  /// `std::invalid_argument` when it is not compiled in or the CPU lacks it.
  void set_kernel(BatchKernel kernel);

  /// Best kernel this binary AND this CPU support (runtime dispatch:
  /// compiled availability is necessary but never sufficient).
  [[nodiscard]] static BatchKernel best_kernel() noexcept;
  /// Whether `kernel` could be activated here.
  [[nodiscard]] static bool kernel_available(BatchKernel kernel) noexcept;

  /// The verified small-branch efficiency cutoff C (see file comment);
  /// -infinity when `e_small_grid <= 0` accepts everything, +infinity(ish)
  /// unused when there is no small rule.  Exposed for tests.
  [[nodiscard]] double small_cutoff() const noexcept { return small_cutoff_; }

  /// Exact lower boundary of grid cell `g`: the smallest non-negative
  /// double whose `domain.to_grid` is >= g, by bit-level bisection with the
  /// scalar map as probe.  Verifies both sides of the boundary and throws
  /// `std::logic_error` if the map disagrees (a non-monotone libm would
  /// surface here, not as a silent wrong answer).  Exposed for tests.
  [[nodiscard]] static double grid_lower_bound(const iky::EfficiencyDomain& domain,
                                               std::int64_t cell);

 private:
  const LcaKp* lca_;
  const LcaKpRun* run_;
  double total_profit_ = 1.0;
  double total_weight_ = 1.0;
  double eps2_ = 0.0;
  bool small_rule_ = false;     ///< run.e_small_grid >= 0
  double small_cutoff_ = 0.0;   ///< efficiency >= cutoff ⇔ grid >= e_small_grid
  std::vector<std::size_t> large_sorted_;  ///< sorted L(Ĩ) for lane fixup
  BatchKernel kernel_ = BatchKernel::kScalar;

  /// Post-classify fixup shared by the vector kernels: resolves large-lane
  /// membership and zeroes failed lanes.
  void fixup_lanes(std::span<const std::size_t> items,
                   BatchScratch& scratch) const;
};

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_BATCH_EVAL_H
