#ifndef LCAKNAP_CORE_LCA_H
#define LCAKNAP_CORE_LCA_H

#include <cstddef>
#include <string>

#include "util/rng.h"

/// \file lca.h
/// The Local Computation Algorithm abstraction (Definition 2.2).
///
/// An LCA answers point queries "is item i part of the solution C?" about an
/// implicit solution to the Knapsack instance behind an `InstanceAccess`.
/// Each `answer` call is one *memoryless run*: it may read the shared random
/// seed (fixed at construction — this is the read-only tape r) and draw fresh
/// sampling randomness from the `Xoshiro256` the caller passes in, but it
/// must not reuse state from previous calls.  Implementations in this library
/// hold only immutable configuration, which makes them parallelizable
/// (Definition 2.3) and query-order oblivious (Definition 2.4) by
/// construction; the consistency harness verifies both empirically.

namespace lcaknap::core {

class Lca {
 public:
  virtual ~Lca() = default;

  /// One memoryless run answering "is item `i` in C?".  `sample_rng` supplies
  /// this run's fresh sampling randomness.
  [[nodiscard]] virtual bool answer(std::size_t i, util::Xoshiro256& sample_rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_LCA_H
