#ifndef LCAKNAP_CORE_BATCH_EVAL_KERNELS_H
#define LCAKNAP_CORE_BATCH_EVAL_KERNELS_H

#include <cstddef>
#include <cstdint>

/// \file batch_eval_kernels.h
/// Internal contract between `BatchEval` and its vector classify kernels.
/// The kernel TUs (`batch_eval_avx2.cpp`, `batch_eval_avx512.cpp`) are only
/// compiled under the `LCAKNAP_NATIVE` cmake gate on x86-64; callers must
/// check CPU support at runtime before invoking (the TUs are built with
/// `-mavx2`/`-mavx512f` and may not run on the host otherwise).
///
/// A kernel fills `large` and `answers` for every lane from the gathered
/// double columns only.  Large lanes get `answers = 0` — membership in
/// L(Ĩ) is resolved by `BatchEval::fixup_lanes`, which also zeroes lanes
/// whose gather failed.  The output must be byte-identical to
/// `BatchEval::classify_scalar` on the same columns (the differential fuzz
/// suite enforces this).

namespace lcaknap::core::detail {

struct ClassifyArgs {
  const double* profit_d = nullptr;  ///< (double)profit per lane
  const double* weight_d = nullptr;  ///< (double)weight per lane
  std::uint8_t* large = nullptr;     ///< out: 1 = norm_profit > eps²
  std::uint8_t* answers = nullptr;   ///< out: small-branch decision (large lanes 0)
  std::size_t n = 0;
  double total_profit = 1.0;
  double total_weight = 1.0;
  double eps2 = 0.0;
  bool small_rule = false;    ///< run.e_small_grid >= 0
  double small_cutoff = 0.0;  ///< efficiency >= cutoff ⇔ to_grid >= e_small_grid
};

/// Scalar classification of one lane; shared by the reference path and the
/// vector kernels' ragged tails so every lane goes through the exact same
/// double operations in the same order as `LcaKp::answer_with_witness`:
/// np = p/P; large = np > eps²; eff = (w == 0 ? +inf : np / (w/W));
/// small answer = small_rule && eff >= cutoff.
void classify_lane_scalar(const ClassifyArgs& args, std::size_t lane) noexcept;

void classify_avx2(const ClassifyArgs& args) noexcept;
void classify_avx512(const ClassifyArgs& args) noexcept;

}  // namespace lcaknap::core::detail

#endif  // LCAKNAP_CORE_BATCH_EVAL_KERNELS_H
