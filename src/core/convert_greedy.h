#ifndef LCAKNAP_CORE_CONVERT_GREEDY_H
#define LCAKNAP_CORE_CONVERT_GREEDY_H

#include <cstddef>
#include <span>
#include <vector>

#include "iky/construct.h"

/// \file convert_greedy.h
/// Algorithm 3 (CONVERT-GREEDY).  Runs the classical greedy 1/2-approximation
/// on the constructed instance Ĩ and converts its outcome into a *portable
/// membership rule* for the original instance:
///
///  * `index_large`  — original-instance indices of large items chosen by the
///                     greedy pass on Ĩ (or the single left-out item when the
///                     singleton branch wins);
///  * `e_small_idx`  — index into the EPS of the efficiency threshold
///                     ẽ_{k-2}; small items of I at or above it are in the
///                     solution (the paper's two-band backoff keeps the
///                     mapped solution feasible, Lemma 4.7);
///  * `singleton`    — B_indicator: the singleton branch was taken, so no
///                     small item is in the solution.
///
/// The rule is a pure function of Ĩ and the EPS, which is why replicas that
/// agree on Ĩ answer queries identically (Lemma 4.9).

namespace lcaknap::core {

struct ConvertGreedyResult {
  std::vector<std::size_t> index_large;
  /// 0-based index into the EPS thresholds of e_small (= ẽ_{k-2}), or -1 when
  /// no small item may be included.
  int e_small_idx = -1;
  /// B_indicator of Algorithm 3.
  bool singleton = false;
  /// Set when the singleton branch selected a small *representative*, which
  /// corresponds to no original item.  The paper's analysis rules this out on
  /// success paths (Lemma 4.7); on failure we answer according to the empty
  /// solution, which is always feasible.
  bool degenerate = false;

  // Diagnostics.
  std::size_t greedy_prefix_len = 0;
  double cutoff_efficiency = -1.0;
};

/// Reusable buffers for `convert_greedy`.  Callers that run the conversion
/// repeatedly (the consistency harness, the replica simulators, bench loops)
/// keep one scratch alive so the per-call sort permutation is not
/// re-allocated every run; the zero-argument overload below owns a local one.
struct ConvertGreedyScratch {
  std::vector<std::size_t> order;
};

/// `thresholds` is the EPS (normalized efficiency values, non-increasing)
/// that `tilde` was constructed from.
[[nodiscard]] ConvertGreedyResult convert_greedy(const iky::TildeInstance& tilde,
                                                 std::span<const double> thresholds);

/// Allocation-lean overload: sorts inside `scratch.order` instead of a fresh
/// vector.  Output is identical to the owning overload.
[[nodiscard]] ConvertGreedyResult convert_greedy(const iky::TildeInstance& tilde,
                                                 std::span<const double> thresholds,
                                                 ConvertGreedyScratch& scratch);

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_CONVERT_GREEDY_H
