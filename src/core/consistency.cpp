#include "core/consistency.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "core/mapping_greedy.h"
#include "oracle/access.h"

namespace lcaknap::core {

ConsistencyReport run_consistency(const knapsack::Instance& instance,
                                  const LcaKpConfig& config,
                                  const ConsistencyConfig& experiment,
                                  double opt_norm_value, util::ThreadPool* pool) {
  const oracle::MaterializedAccess access(instance);
  const LcaKp lca(access, config);
  const std::size_t replicas = std::max<std::size_t>(2, experiment.replicas);

  // Query set: a uniform sample of distinct indices (or everything).
  util::Xoshiro256 exp_rng(experiment.experiment_seed);
  std::vector<std::size_t> query_set;
  if (experiment.queries == 0 || experiment.queries >= instance.size()) {
    query_set.resize(instance.size());
    std::iota(query_set.begin(), query_set.end(), 0);
  } else {
    std::vector<std::size_t> all(instance.size());
    std::iota(all.begin(), all.end(), 0);
    for (std::size_t k = 0; k < experiment.queries; ++k) {
      const std::size_t pick = k + static_cast<std::size_t>(
                                       exp_rng.next_below(all.size() - k));
      std::swap(all[k], all[pick]);
    }
    query_set.assign(all.begin(),
                     all.begin() + static_cast<std::ptrdiff_t>(experiment.queries));
  }

  // Execute the replicas: same shared seed (inside `config`), fresh tapes.
  std::vector<LcaKpRun> runs(replicas);
  const auto run_one = [&](std::size_t r) {
    util::Xoshiro256 tape(util::mix64(experiment.experiment_seed ^
                                      (0x9E3779B97F4A7C15ULL * (r + 1))));
    runs[r] = lca.run_pipeline(tape);
  };
  if (pool != nullptr) {
    pool->parallel_for(replicas, run_one);
  } else {
    for (std::size_t r = 0; r < replicas; ++r) run_one(r);
  }

  // Collect answers (decision only; instance data stands in for the single
  // counted query each answer would perform).
  std::vector<std::vector<bool>> answers(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    answers[r].reserve(query_set.size());
    for (const auto i : query_set) {
      answers[r].push_back(
          lca.decide(runs[r], i, instance.norm_profit(i), instance.efficiency(i)));
    }
  }

  ConsistencyReport report;
  report.replicas = replicas;
  report.queries = query_set.size();

  const std::size_t pairs = replicas * (replicas - 1) / 2;
  double agreement_sum = 0.0;
  std::size_t unanimous = 0;
  for (std::size_t qi = 0; qi < query_set.size(); ++qi) {
    std::size_t yes = 0;
    for (std::size_t r = 0; r < replicas; ++r) yes += answers[r][qi] ? 1 : 0;
    const std::size_t no = replicas - yes;
    const std::size_t agreeing = yes * (yes - 1) / 2 + no * (no - 1) / 2;
    agreement_sum += static_cast<double>(agreeing) / static_cast<double>(pairs);
    if (yes == 0 || no == 0) ++unanimous;
  }
  report.pairwise_agreement =
      query_set.empty() ? 1.0 : agreement_sum / static_cast<double>(query_set.size());
  report.unanimous_fraction =
      query_set.empty() ? 1.0
                        : static_cast<double>(unanimous) /
                              static_cast<double>(query_set.size());

  std::size_t identical_pairs = 0;
  for (std::size_t a = 0; a < replicas; ++a) {
    for (std::size_t b = a + 1; b < replicas; ++b) {
      if (answers[a] == answers[b]) ++identical_pairs;
    }
  }
  report.identical_pair_fraction =
      static_cast<double>(identical_pairs) / static_cast<double>(pairs);

  // Per-replica solution quality via MAPPING-GREEDY.
  double value_sum = 0.0;
  double min_value = std::numeric_limits<double>::infinity();
  double samples_sum = 0.0;
  for (std::size_t r = 0; r < replicas; ++r) {
    const SolutionEval eval = evaluate_run(instance, lca, runs[r]);
    if (eval.feasible) ++report.feasible_runs;
    value_sum += eval.norm_value;
    min_value = std::min(min_value, eval.norm_value);
    samples_sum += static_cast<double>(runs[r].samples_used);
  }
  report.mean_norm_value = value_sum / static_cast<double>(replicas);
  report.min_norm_value = min_value;
  report.mean_samples_per_run = samples_sum / static_cast<double>(replicas);
  if (opt_norm_value > 0.0) {
    report.mean_value_ratio = report.mean_norm_value / opt_norm_value;
  }

  // Consensus: per-item majority vote across replicas (ties exclude).
  std::vector<std::size_t> consensus;
  std::vector<std::size_t> yes_votes(instance.size(), 0);
  for (std::size_t r = 0; r < replicas; ++r) {
    for (std::size_t i = 0; i < instance.size(); ++i) {
      if (lca.decide(runs[r], i, instance.norm_profit(i), instance.efficiency(i))) {
        ++yes_votes[i];
      }
    }
  }
  std::vector<bool> in_consensus(instance.size(), false);
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (2 * yes_votes[i] > replicas) {
      in_consensus[i] = true;
      consensus.push_back(i);
    }
  }
  report.consensus_feasible = instance.feasible(consensus);
  report.consensus_norm_value = static_cast<double>(instance.value_of(consensus)) /
                                static_cast<double>(instance.total_profit());
  double divergence_sum = 0.0;
  for (std::size_t r = 0; r < replicas; ++r) {
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < instance.size(); ++i) {
      if (lca.decide(runs[r], i, instance.norm_profit(i), instance.efficiency(i)) !=
          in_consensus[i]) {
        ++diffs;
      }
    }
    divergence_sum += static_cast<double>(diffs) / static_cast<double>(instance.size());
  }
  report.mean_divergence_from_consensus =
      divergence_sum / static_cast<double>(replicas);
  return report;
}

}  // namespace lcaknap::core
