#include "core/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/metrics.h"
#include "oracle/access.h"
#include "oracle/instrumented.h"
#include "util/request_trace.h"
#include "util/rng.h"

namespace lcaknap::core {

std::vector<std::size_t> generate_workload(std::size_t n_items,
                                           const WorkloadConfig& config) {
  if (n_items == 0) throw std::invalid_argument("generate_workload: no items");
  util::Xoshiro256 rng(config.seed);
  std::vector<std::size_t> trace;
  trace.reserve(config.queries);
  switch (config.shape) {
    case WorkloadConfig::Shape::kUniform: {
      for (std::size_t q = 0; q < config.queries; ++q) {
        trace.push_back(static_cast<std::size_t>(rng.next_below(n_items)));
      }
      break;
    }
    case WorkloadConfig::Shape::kZipf: {
      // Precompute the rank CDF once; ranks map to items through a fixed
      // pseudorandom permutation so the hot set is spread over the index
      // space (as real popularity is).
      if (!(config.zipf_s > 0.0)) {
        throw std::invalid_argument("generate_workload: zipf_s must be > 0");
      }
      std::vector<double> cdf(n_items);
      double total = 0.0;
      for (std::size_t r = 0; r < n_items; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), config.zipf_s);
        cdf[r] = total;
      }
      const util::Prf shuffle(config.seed ^ 0x51AF);
      for (std::size_t q = 0; q < config.queries; ++q) {
        const double u = rng.next_double() * total;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        const auto rank = static_cast<std::size_t>(it - cdf.begin());
        trace.push_back(static_cast<std::size_t>(
            shuffle.word(0, static_cast<std::uint64_t>(rank)) % n_items));
      }
      break;
    }
    case WorkloadConfig::Shape::kTrace: {
      if (config.trace_path.empty()) {
        throw std::invalid_argument("generate_workload: trace shape needs a path");
      }
      const auto records = util::load_trace_file(config.trace_path);
      if (records.empty()) {
        throw std::invalid_argument("generate_workload: empty trace: " +
                                    config.trace_path);
      }
      // Replay in recorded order; truncate or wrap to exactly `queries`
      // entries so trace workloads compose with the synthetic shapes.
      const std::size_t count = config.queries > 0 ? config.queries : records.size();
      for (std::size_t q = 0; q < count; ++q) {
        trace.push_back(static_cast<std::size_t>(
            records[q % records.size()].item % n_items));
      }
      break;
    }
    case WorkloadConfig::Shape::kHotspot: {
      if (!(config.hotspot_fraction >= 0.0 && config.hotspot_fraction <= 1.0) ||
          config.hotspot_items == 0) {
        throw std::invalid_argument("generate_workload: bad hotspot parameters");
      }
      const std::size_t hot = std::min(config.hotspot_items, n_items);
      const util::Prf pick(config.seed ^ 0x407);
      for (std::size_t q = 0; q < config.queries; ++q) {
        if (rng.next_double() < config.hotspot_fraction) {
          const auto slot = rng.next_below(hot);
          trace.push_back(static_cast<std::size_t>(pick.word(1, slot) % n_items));
        } else {
          trace.push_back(static_cast<std::size_t>(rng.next_below(n_items)));
        }
      }
      break;
    }
  }
  return trace;
}

std::vector<double> serving_latency_buckets() {
  return metrics::Histogram::exponential_buckets(20.0, 1.5, 20);
}

ServingReport simulate_serving(const knapsack::Instance& instance,
                               const ServingConfig& serving,
                               const WorkloadConfig& workload,
                               util::ThreadPool* pool) {
  auto& registry = metrics::global_registry();
  const oracle::MaterializedAccess storage(instance);
  const oracle::InstrumentedAccess access(storage, registry);
  const LcaKp lca(access, serving.lca);
  metrics::Counter& served_total = registry.counter(
      "serving_queries_total", "Membership queries served by the replica fleet");
  metrics::Histogram& latency_hist = registry.histogram(
      "serving_query_latency_us",
      "Simulated per-query serving latency in microseconds (one oracle read "
      "under the RPC model)",
      serving_latency_buckets());
  const std::size_t replicas = std::max<std::size_t>(1, serving.replicas);

  // Warm-ups.
  std::vector<LcaKpRun> runs(replicas);
  const auto warm_one = [&](std::size_t r) {
    util::Xoshiro256 tape(util::mix64(serving.seed ^ (0xA11CE + r)));
    runs[r] = lca.run_pipeline(tape);
  };
  if (pool != nullptr) {
    pool->parallel_for(replicas, warm_one);
  } else {
    for (std::size_t r = 0; r < replicas; ++r) warm_one(r);
  }

  ServingReport report;
  report.replicas = replicas;
  double warmup_samples = 0.0;
  for (const auto& run : runs) {
    warmup_samples += static_cast<double>(run.samples_used);
  }
  report.warmup_samples_per_replica = warmup_samples / static_cast<double>(replicas);
  report.warmup_sim_ms_per_replica =
      report.warmup_samples_per_replica *
      (serving.rpc_fixed_us + serving.rpc_exp_mean_us) / 1'000.0;
  registry
      .gauge("serving_warmup_samples_per_replica",
             "Weighted samples one replica spends executing the LCA-KP pipeline")
      .set(report.warmup_samples_per_replica);
  registry
      .gauge("serving_warmup_sim_ms_per_replica",
             "Simulated warm-up time per replica under the RPC model (ms)")
      .set(report.warmup_sim_ms_per_replica);

  // Serve the trace.
  const auto trace = generate_workload(instance.size(), workload);
  report.queries = trace.size();
  util::Xoshiro256 latency_rng(util::mix64(serving.seed ^ 0x7A7E));
  std::vector<double> latencies;
  latencies.reserve(trace.size());
  std::size_t yes = 0;
  std::size_t consistent = 0;
  for (std::size_t q = 0; q < trace.size(); ++q) {
    const std::size_t item = trace[q];
    const auto& run = runs[q % replicas];
    const bool answer =
        lca.decide(run, item, instance.norm_profit(item), instance.efficiency(item));
    yes += answer ? 1 : 0;
    // Consensus audit: majority of the fleet on this item.
    std::size_t votes = 0;
    for (const auto& other : runs) {
      if (lca.decide(other, item, instance.norm_profit(item),
                     instance.efficiency(item))) {
        ++votes;
      }
    }
    const bool consensus = 2 * votes > replicas;
    consistent += (answer == consensus) ? 1 : 0;
    // One oracle read per answer under the RPC model; the span feeds the
    // registry histogram the SLO readout is built from.
    const double u = latency_rng.next_double();
    const double latency_us =
        serving.rpc_fixed_us - serving.rpc_exp_mean_us * std::log1p(-u);
    latency_hist.observe(latency_us);
    served_total.inc();
    latencies.push_back(latency_us);
  }
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    if (latencies.empty()) return 0.0;
    auto idx = static_cast<std::size_t>(p * static_cast<double>(latencies.size()));
    idx = std::min(idx, latencies.size() - 1);
    return latencies[idx];
  };
  report.p50_us = pct(0.50);
  report.p95_us = pct(0.95);
  report.p99_us = pct(0.99);
  report.yes_rate =
      trace.empty() ? 0.0 : static_cast<double>(yes) / static_cast<double>(trace.size());
  report.consistency_rate =
      trace.empty() ? 1.0
                    : static_cast<double>(consistent) / static_cast<double>(trace.size());
  registry
      .gauge("serving_consistency_rate",
             "Fraction of served answers matching the fleet consensus")
      .set(report.consistency_rate);
  report.oracle_queries = access.query_count();
  report.oracle_samples = access.sample_count();
  return report;
}

}  // namespace lcaknap::core
