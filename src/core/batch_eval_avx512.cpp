// AVX-512F classify kernel (8 lanes of doubles per iteration, mask
// registers).  Compiled with -mavx512f under the LCAKNAP_NATIVE cmake gate;
// dispatched only after a runtime __builtin_cpu_supports("avx512f") check.
//
// Same byte-equality argument as the AVX2 kernel: correctly-rounded vdivpd,
// exact compare predicates, +inf blended over zero-weight lanes before the
// efficiency compare, scalar ragged tail through classify_lane_scalar.

#include <immintrin.h>

#include <limits>

#include "core/batch_eval_kernels.h"

namespace lcaknap::core::detail {

void classify_avx512(const ClassifyArgs& args) noexcept {
  const __m512d v_total_profit = _mm512_set1_pd(args.total_profit);
  const __m512d v_total_weight = _mm512_set1_pd(args.total_weight);
  const __m512d v_eps2 = _mm512_set1_pd(args.eps2);
  const __m512d v_cutoff = _mm512_set1_pd(args.small_cutoff);
  const __m512d v_inf =
      _mm512_set1_pd(std::numeric_limits<double>::infinity());
  const __m512d v_zero = _mm512_setzero_pd();

  std::size_t i = 0;
  for (; i + 8 <= args.n; i += 8) {
    const __m512d p = _mm512_loadu_pd(args.profit_d + i);
    const __m512d w = _mm512_loadu_pd(args.weight_d + i);
    const __m512d np = _mm512_div_pd(p, v_total_profit);
    const __mmask8 large_m = _mm512_cmp_pd_mask(np, v_eps2, _CMP_GT_OQ);
    const __m512d nw = _mm512_div_pd(w, v_total_weight);
    __m512d eff = _mm512_div_pd(np, nw);
    const __mmask8 zero_w = _mm512_cmp_pd_mask(w, v_zero, _CMP_EQ_OQ);
    eff = _mm512_mask_mov_pd(eff, zero_w, v_inf);
    __mmask8 small_ans =
        args.small_rule ? _mm512_cmp_pd_mask(eff, v_cutoff, _CMP_GE_OQ)
                        : static_cast<__mmask8>(0);
    // Large lanes answer 0 here; fixup_lanes resolves their membership.
    const __mmask8 ans = static_cast<__mmask8>(small_ans & ~large_m);
    for (int k = 0; k < 8; ++k) {
      args.large[i + static_cast<std::size_t>(k)] =
          static_cast<std::uint8_t>((large_m >> k) & 1);
      args.answers[i + static_cast<std::size_t>(k)] =
          static_cast<std::uint8_t>((ans >> k) & 1);
    }
  }
  for (; i < args.n; ++i) {
    classify_lane_scalar(args, i);
  }
}

}  // namespace lcaknap::core::detail
