#include "core/full_read_lca.h"

#include <algorithm>
#include <vector>

#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/solve.h"

namespace lcaknap::core {

bool FullReadLca::answer(std::size_t i, util::Xoshiro256& /*sample_rng*/) const {
  // Read the whole instance: n counted queries.
  std::vector<knapsack::Item> items;
  items.reserve(access_->size());
  for (std::size_t k = 0; k < access_->size(); ++k) {
    items.push_back(access_->query(k));
  }
  const knapsack::Instance instance(std::move(items), access_->capacity());
  knapsack::Solution solution;
  if (solver_ == Solver::kExact) {
    solution = knapsack::solve_exact(instance).solution;
  } else {
    solution = knapsack::greedy_half(instance).solution;
  }
  return std::find(solution.items.begin(), solution.items.end(), i) !=
         solution.items.end();
}

}  // namespace lcaknap::core
