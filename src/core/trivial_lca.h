#ifndef LCAKNAP_CORE_TRIVIAL_LCA_H
#define LCAKNAP_CORE_TRIVIAL_LCA_H

#include "core/lca.h"

/// \file trivial_lca.h
/// The trivial LCA the paper warns about after Definition 2.4: always answer
/// "no".  Perfectly consistent (with the empty solution), zero queries, zero
/// value.  Serves as the floor in every comparison table.

namespace lcaknap::core {

class TrivialLca final : public Lca {
 public:
  [[nodiscard]] bool answer(std::size_t /*i*/,
                            util::Xoshiro256& /*sample_rng*/) const override {
    return false;
  }
  [[nodiscard]] std::string name() const override { return "trivial-no"; }
};

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_TRIVIAL_LCA_H
