#ifndef LCAKNAP_CORE_SERVING_SIM_H
#define LCAKNAP_CORE_SERVING_SIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/instance.h"
#include "util/thread_pool.h"

/// \file serving_sim.h
/// A serving-fleet simulator: the end-to-end deployment the paper's
/// introduction motivates, as one measurable artifact.
///
/// A fleet of replicas (one LCA-KP run each, same shared seed) serves a
/// synthetic query trace.  Each query routes to a replica, costs one oracle
/// read whose latency is drawn from an RPC model, and is audited against the
/// fleet consensus.  The report carries the numbers an operator would watch:
/// warm-up cost, per-query latency percentiles, answer skew, and the
/// consistency rate — the paper's guarantee expressed as an SLO.
///
/// The simulator feeds the metrics registry as it runs: the oracle sits
/// behind an `InstrumentedAccess` (so `oracle_queries_total` /
/// `oracle_samples_total` advance), every served query observes its
/// simulated latency into the `serving_query_latency_us` histogram and
/// increments `serving_queries_total`, and warm-up economics land in gauges.
/// The report additionally carries the legacy oracle counter readings
/// (`oracle_queries` / `oracle_samples`) so benches can assert that the
/// registry and the hand-rolled atomics never drift.

namespace lcaknap::core {

struct WorkloadConfig {
  enum class Shape {
    kUniform,  ///< every item equally likely
    kZipf,     ///< rank-skewed: item ranks drawn with P(r) ∝ 1/r^s
    kHotspot,  ///< `hotspot_fraction` of traffic hits `hotspot_items` items
    kTrace,    ///< replay a recorded request log (util::request_trace)
  };
  Shape shape = Shape::kUniform;
  std::size_t queries = 10'000;
  double zipf_s = 1.1;
  double hotspot_fraction = 0.9;
  std::size_t hotspot_items = 16;
  std::uint64_t seed = 1;
  /// `kTrace`: path of the recorded log (`lcaknap-trace 1` format, e.g. from
  /// `lcaknap_loadgen --trace-record`).  Items are replayed in recorded
  /// order, mapped `% n_items`; the replay is truncated to `queries` entries
  /// when the trace is longer and wraps around when it is shorter, so every
  /// shape produces exactly `queries` entries.  Timestamps and tenants are
  /// carried by the wire-level replayer (`--trace-replay`), not here — this
  /// generator yields item sequences only.
  std::string trace_path;
};

/// Generates the query trace (item indices) for an instance of n items.
[[nodiscard]] std::vector<std::size_t> generate_workload(std::size_t n_items,
                                                         const WorkloadConfig& config);

struct ServingConfig {
  LcaKpConfig lca;
  std::size_t replicas = 4;
  /// Per-oracle-read latency model: fixed cost plus exponential tail.
  double rpc_fixed_us = 80.0;
  double rpc_exp_mean_us = 30.0;
  std::uint64_t seed = 7;  ///< fresh randomness (replica tapes, latency draws)
};

struct ServingReport {
  std::size_t replicas = 0;
  std::size_t queries = 0;

  /// Sampling cost of one replica's warm-up (pipeline execution).
  double warmup_samples_per_replica = 0.0;
  /// Simulated warm-up time per replica at the configured RPC model (ms).
  double warmup_sim_ms_per_replica = 0.0;

  /// Simulated per-query latency percentiles (microseconds).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  double yes_rate = 0.0;
  /// Fraction of queries whose answer matched the fleet consensus (majority
  /// of all replicas on that item) — the operator-visible consistency SLO.
  double consistency_rate = 0.0;

  /// Legacy per-oracle counter readings for this simulation's access object
  /// (queries and weighted samples).  The same events are recorded in the
  /// registry; benches cross-check the two read-out paths.
  std::uint64_t oracle_queries = 0;
  std::uint64_t oracle_samples = 0;
};

/// Bucket bounds shared by every `serving_query_latency_us` histogram (20 us
/// up by factor 1.5: the RPC fixed cost lands mid-range, the exponential
/// tail spreads over the top buckets).
[[nodiscard]] std::vector<double> serving_latency_buckets();

/// Runs the simulation.  Replica warm-ups execute on `pool` when provided.
[[nodiscard]] ServingReport simulate_serving(const knapsack::Instance& instance,
                                             const ServingConfig& serving,
                                             const WorkloadConfig& workload,
                                             util::ThreadPool* pool = nullptr);

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_SERVING_SIM_H
