#include "core/convert_greedy.h"

#include <algorithm>
#include <numeric>

namespace lcaknap::core {

ConvertGreedyResult convert_greedy(const iky::TildeInstance& tilde,
                                   std::span<const double> thresholds) {
  ConvertGreedyScratch scratch;
  return convert_greedy(tilde, thresholds, scratch);
}

ConvertGreedyResult convert_greedy(const iky::TildeInstance& tilde,
                                   std::span<const double> thresholds,
                                   ConvertGreedyScratch& scratch) {
  ConvertGreedyResult result;
  const auto& items = tilde.items;
  if (items.empty()) return result;

  // Line 1: sort by non-increasing efficiency.  The tie-break must be
  // deterministic so that replicas with identical Ĩ sort identically: large
  // items before representatives, then by source index / band.
  auto& order = scratch.order;
  order.resize(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ia = items[a];
    const auto& ib = items[b];
    if (ia.efficiency != ib.efficiency) return ia.efficiency > ib.efficiency;
    if (ia.is_large != ib.is_large) return ia.is_large;
    if (ia.is_large) return ia.source_index < ib.source_index;
    if (ia.band != ib.band) return ia.band < ib.band;
    return a < b;
  });

  // Line 2: largest j with prefix weight within the capacity (prefix greedy:
  // stop at the first item that does not fit).
  double weight_used = 0.0;
  double prefix_profit = 0.0;
  std::size_t j = 0;  // number of items fully included
  for (; j < order.size(); ++j) {
    const auto& it = items[order[j]];
    if (weight_used + it.weight > tilde.capacity) break;
    weight_used += it.weight;
    prefix_profit += it.profit;
  }
  result.greedy_prefix_len = j;

  const bool everything_fit = (j == order.size());
  if (!everything_fit) {
    result.cutoff_efficiency = items[order[j]].efficiency;
  }

  // Line 4: the greedy prefix wins when everything fit or its profit beats
  // the first left-out item.
  if (everything_fit || prefix_profit >= items[order[j]].profit) {
    for (std::size_t r = 0; r < j; ++r) {
      const auto& it = items[order[r]];
      if (it.is_large) result.index_large.push_back(it.source_index);
    }
    // Line 3: largest k (1-based) with ẽ_k > p_j/w_j, where (p_j, w_j) is the
    // last *included* item; when everything fit, every threshold qualifies.
    std::size_t k = 0;
    if (j > 0) {
      const double last_eff = items[order[j - 1]].efficiency;
      for (std::size_t idx = 0; idx < thresholds.size(); ++idx) {
        if (thresholds[idx] > last_eff) {
          k = idx + 1;  // 1-based
        } else {
          break;
        }
      }
    }
    if (everything_fit) k = thresholds.size();
    // Lines 6-9: back off two bands for feasibility (Lemma 4.7).
    if (k >= 3) {
      result.e_small_idx = static_cast<int>(k) - 3;  // ẽ_{k-2}, 0-based
    }
    return result;
  }

  // Lines 11-13: singleton branch.  The left-out item must be large (its
  // profit exceeds the whole prefix, and representatives all have profit
  // eps^2 <= any included profit); guard anyway.
  result.singleton = true;
  const auto& left_out = items[order[j]];
  if (left_out.is_large) {
    result.index_large.push_back(left_out.source_index);
  } else {
    result.degenerate = true;
  }
  return result;
}

}  // namespace lcaknap::core
