#ifndef LCAKNAP_CORE_LCA_KP_H
#define LCAKNAP_CORE_LCA_KP_H

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/convert_greedy.h"
#include "core/lca.h"
#include "iky/efficiency_domain.h"
#include "oracle/access.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lcaknap::util {
class ThreadPool;
}

/// \file lca_kp.h
/// Algorithm 2 (LCA-KP), the paper's main positive result (Theorem 4.1): an
/// LCA that, given weighted-sampling access to the instance, provides
/// consistent query access to a (1/2, 6*eps)-approximate Knapsack solution
/// with per-query cost independent of n up to the reproducible-median's mild
/// domain dependence.
///
/// Pipeline of one run (all sampling uses the run's fresh randomness, all
/// rounding/thresholding uses the shared seed):
///  1. draw R̄, keep distinct large items        (Lemma 4.2)           -> L(Ĩ)
///  2. if small mass >= eps: draw Q̄, drop large items, map efficiencies onto
///     the finite grid (Section 4.2), and compute the EPS thresholds with
///     reproducible quantiles                    (Algorithm 1, Lemma 4.6)
///  3. construct Ĩ                               (Ĩ-construction, Section 4)
///  4. CONVERT-GREEDY(Ĩ, EPS)                    (Algorithm 3)
///  5. classify the queried item and answer      (lines 20-24)
///
/// Consistency (Lemma 4.9): steps 4-5 are pure functions of (L(Ĩ), EPS); step
/// 1 collects *all* of L(I) w.h.p., and step 2's thresholds are reproducible,
/// so independent replicas construct the same Ĩ and answer identically.

namespace lcaknap::core {

struct LcaKpConfig {
  /// Approximation parameter; the served solution is (1/2, 6*eps)-approximate.
  double eps = 0.25;
  /// The shared random seed r of Definition 2.2.  Replicas meant to serve the
  /// same solution must share it.
  std::uint64_t seed = 0x5EED;

  /// Efficiency-grid resolution: log2 |X| of Section 4.2's finite domain.
  int domain_bits = 12;
  /// Branching factor of the reproducible median search.
  int branching = 16;

  /// Sampling budgets; 0 means auto.  Auto for `large_samples` follows
  /// Lemma 4.2 (delta = eps^2, amplified); auto for `quantile_samples` uses a
  /// calibrated allocation (see resolve_params) rather than the paper's
  /// worst-case constants, whose concrete values are astronomically large —
  /// the benches measure the consistency actually achieved.
  std::size_t large_samples = 0;
  std::size_t quantile_samples = 0;
  /// Hard cap applied to the auto quantile budget to keep runs affordable.
  std::size_t max_quantile_samples = 2'000'000;

  /// Reproducible-quantile parameters; 0 means auto.  Paper values are
  /// tau = eps^2/5, rho = eps^2/18, beta = rho/2 (Algorithm 2, line 5); the
  /// calibrated defaults relax tau/rho to eps-scale for affordability.
  double tau = 0.0;
  double rho = 0.0;
  double beta = 0.0;
  /// Use the paper's literal tau/rho/beta instead of the calibrated ones
  /// (sampling budgets stay capped; expect lower measured consistency than
  /// theory because the paper's sample sizes are not affordable).
  bool paper_constants = false;

  /// Ablation: replace the reproducible quantiles with plain empirical
  /// quantiles (the [IKY12] estimator).  Demonstrates the inconsistency the
  /// paper identifies as the "major issue" in Section 1.1.
  bool reproducible_quantiles = true;

  /// Default thread count for the sharded warm-up (`run_warmup`); 0 means
  /// hardware concurrency.  Any value produces bit-identical (L(Ĩ), EPS):
  /// the sample draws are pinned to fixed PRF substreams per shard, not to
  /// threads (see run_warmup).
  std::size_t warmup_threads = 1;
};

/// Fully resolved numeric parameters of a run (for reporting).
struct LcaKpParams {
  double tau = 0.0;
  double rho = 0.0;
  double beta = 0.0;
  std::size_t large_samples = 0;
  std::size_t quantile_samples = 0;
  int t_max = 0;  ///< upper bound floor(1/q) used for query-id layout
};

/// Sufficient statistics of one warm-up's sample outcome, recorded when
/// `run_warmup` is handed a trace out-param.  The key fact (src/dyn relies
/// on it): both sweeps draw indices profit-proportionally, the step-1 filter
/// keeps an index iff norm_profit > eps^2, and the step-2 ECDF is built by
/// counting sort — so the *multiset of drawn indices* determines the run.
/// A mutation batch that provably leaves the profit vector (and n) unchanged
/// leaves every PRF-substream draw sequence and both filters unchanged, and
/// the run for the mutated instance can be replayed from this trace by
/// re-reading only the distinct drawn indices (see dyn::replay_delta) —
/// O(distinct indices) instead of O(samples) weighted draws.
struct WarmupTrace {
  std::uint64_t tape_seed = 0;
  /// Distinct step-1 draws classified large (norm_profit > eps^2), sorted by
  /// index — exactly the post-merge contents of the large-sweep dedup table.
  std::vector<std::size_t> large_drawn;
  /// Whether step 2 ran (the small-mass gate `1 - large_mass >= eps` passed).
  bool quantile_swept = false;
  /// Step-2 draws that passed the line-7 small filter, as sorted
  /// (index, draw count) pairs.  Counts suffice: the ECDF is order-blind.
  std::vector<std::pair<std::size_t, std::uint64_t>> quantile_draws;
};

/// The outcome of one pipeline execution.  `answer_from` evaluates the
/// membership rule; everything else is diagnostics for the harnesses.
struct LcaKpRun {
  // Membership rule (the LCA's entire "state" about the solution).
  std::unordered_set<std::size_t> index_large;
  std::int64_t e_small_grid = -1;  ///< grid threshold, -1 = no small items
  bool singleton = false;
  bool degenerate = false;

  // Diagnostics.
  double large_mass = 0.0;
  double q = 0.0;
  int t = 0;
  std::vector<std::int64_t> thresholds_grid;  ///< EPS on the grid
  std::vector<double> thresholds;             ///< EPS as efficiencies
  std::uint64_t samples_used = 0;
  std::size_t tilde_size = 0;
};

class LcaKp final : public Lca {
 public:
  /// `access` must outlive this object.
  LcaKp(const oracle::InstanceAccess& access, const LcaKpConfig& config);

  /// One memoryless run: executes the full pipeline, then answers for `i`.
  [[nodiscard]] bool answer(std::size_t i, util::Xoshiro256& sample_rng) const override;
  [[nodiscard]] std::string name() const override { return "lca-kp"; }

  /// Executes the pipeline once (one replica / one run), without answering.
  [[nodiscard]] LcaKpRun run_pipeline(util::Xoshiro256& sample_rng) const;

  /// Fixed shard count of the parallel warm-up.  A constant (never derived
  /// from the thread count) so that every thread count replays the same
  /// shard → substream layout.
  static constexpr std::size_t kWarmupShards = 64;

  /// Deterministic sharded warm-up: the Theorem 4.1 one-time pipeline run,
  /// parallelized without giving up Lemma 4.9's consistency.  The Lemma 4.2
  /// large-item sweep and the quantile-sample draw are split over
  /// `kWarmupShards` shards; shard s draws from its own fresh-randomness
  /// substream `PRF(tape_seed)(phase, s)` and shard results are merged in
  /// shard order, so the produced (L(Ĩ), EPS) — and therefore every served
  /// answer — is a pure function of `tape_seed` and the shared seed,
  /// independent of `threads`.  `threads` = 0 uses `config().warmup_threads`
  /// (itself 0 = hardware concurrency); shards run on `pool` when provided,
  /// else on a pool owned for the duration of the call.
  ///
  /// Note this draws a *different* (but equally fresh) sample sequence than
  /// `run_pipeline` on a single tape; both satisfy Theorem 4.1, and replicas
  /// that must serve identical answers share `tape_seed` as they previously
  /// shared the tape.
  [[nodiscard]] LcaKpRun run_warmup(std::uint64_t tape_seed,
                                    std::size_t threads = 0,
                                    util::ThreadPool* pool = nullptr,
                                    WarmupTrace* trace = nullptr) const;

  /// Completes a run from already-collected sweep results: applies the
  /// step-2 small-mass gate, derives q/t, computes the EPS thresholds from
  /// the grid-mapped small efficiencies, and finalizes (steps 3-4).  This is
  /// the exact tail of `run_warmup` after its two sample sweeps, exposed so
  /// the delta-warm-up replay (src/dyn) reuses the same arithmetic instead
  /// of re-implementing it — any drift would break the digest-equality
  /// contract.  `large` must be sorted by index with `large_mass` its
  /// accumulated norm-profit mass (in that order); `efficiencies` is the
  /// grid-mapped multiset from the quantile sweep (order irrelevant), empty
  /// when the sweep did not run.
  [[nodiscard]] LcaKpRun complete_run_from_sweeps(
      std::span<const iky::NormLargeItem> large, double large_mass,
      std::span<const std::int64_t> efficiencies) const;

  /// Same tail from a pre-aggregated efficiency multiset: (grid value,
  /// count) cells instead of one entry per observation, feeding the ECDF's
  /// histogram constructor directly.  Produces the identical run — the ECDF
  /// readouts are representation-independent — at O(cells + domain) instead
  /// of O(samples), which is what keeps the delta warm-up replay's cost
  /// bounded by the *trace* size, not the sample budget (src/dyn/delta.h).
  [[nodiscard]] LcaKpRun complete_run_from_sweeps(
      std::span<const iky::NormLargeItem> large, double large_mass,
      std::span<const util::WeightedValue> weighted_efficiencies) const;

  /// Answers "is item i in C?" from a finished run.  Costs exactly one query
  /// to the instance (lines 20-24 read item i).
  [[nodiscard]] bool answer_from(const LcaKpRun& run, std::size_t i) const;

  /// Everything an independent auditor needs to replay one answer offline:
  /// the item contents as witnessed at evaluation time plus which branch of
  /// the membership rule (lines 20-24) fired.  An answer, its witness, and
  /// the warm state `(L(Ĩ), EPS)` together are a checkable claim — the
  /// certificate layer (src/cert) serializes exactly this.
  struct AnswerWitness {
    std::int64_t profit = 0;  ///< raw item profit as read from the oracle
    std::int64_t weight = 0;  ///< raw item weight as read from the oracle
    bool large = false;       ///< took the large branch: norm_profit > eps^2
    bool answer = false;
  };

  /// `answer_from` that also captures the witness; same single oracle query,
  /// bit-identical answer (the witness is a byproduct of the evaluation the
  /// plain path already performs, not a second evaluation).
  [[nodiscard]] bool answer_with_witness(const LcaKpRun& run, std::size_t i,
                                         AnswerWitness& witness) const;

  /// The membership decision given an item's contents (no oracle access;
  /// used by MAPPING-GREEDY and the offline evaluators).
  [[nodiscard]] bool decide(const LcaKpRun& run, std::size_t index,
                            double norm_profit, double efficiency) const;

  [[nodiscard]] const LcaKpConfig& config() const noexcept { return config_; }
  [[nodiscard]] const iky::EfficiencyDomain& domain() const noexcept { return domain_; }
  [[nodiscard]] const LcaKpParams& params() const noexcept { return params_; }
  [[nodiscard]] const oracle::InstanceAccess& access() const noexcept { return *access_; }

 private:
  /// Step 2's tail: reproducible EPS thresholds from the grid-mapped small
  /// efficiencies (expects run.q / run.t already set).
  /// The shared threshold loop over an already-built ECDF (lines 8-14).
  void compute_thresholds_from_cdf(LcaKpRun& run,
                                   const util::EmpiricalCdfInt& ecdf) const;
  void compute_thresholds(LcaKpRun& run,
                          std::span<const std::int64_t> efficiencies) const;
  /// Steps 3-4: construct Ĩ and convert its greedy into the membership rule.
  void finalize_run(LcaKpRun& run,
                    std::span<const iky::NormLargeItem> large) const;

  const oracle::InstanceAccess* access_;
  LcaKpConfig config_;
  LcaKpParams params_;
  iky::EfficiencyDomain domain_;
  util::Prf prf_;
};

/// Resolves the auto fields of a config (exposed for tests and benches).
[[nodiscard]] LcaKpParams resolve_params(const LcaKpConfig& config);

/// Canonical 64-bit digest of a run's served state (L(Ĩ), EPS): the sorted
/// large-item indices, the small-item rule (e_small_grid, singleton,
/// degenerate), and the grid thresholds — exactly the state Lemma 4.9 says
/// the answers are a pure function of.  Two runs with equal digests serve
/// identical answers; the determinism suite pins digest equality across
/// `warmup_threads` and the warm-up bench reports it.
[[nodiscard]] std::uint64_t run_digest(const LcaKpRun& run);

/// Serializes a run's membership rule (and EPS diagnostics) as plain text.
/// Deployment shape: one warm-up process executes the pipeline, persists the
/// run, and stateless serving replicas load it — their answers are identical
/// to the warm-up replica's by construction.
void save_run(const LcaKpRun& run, std::ostream& os);
[[nodiscard]] LcaKpRun load_run(std::istream& is);

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_LCA_KP_H
