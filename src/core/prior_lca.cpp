#include "core/prior_lca.h"

#include <algorithm>

#include "knapsack/solvers/greedy.h"
#include "oracle/access.h"

namespace lcaknap::core {

Prior learn_prior(const knapsack::Instance& reference, const LcaKpConfig& config,
                  std::uint64_t tape_seed) {
  const oracle::MaterializedAccess access(reference);
  const LcaKp lca(access, config);
  util::Xoshiro256 tape(tape_seed);
  const LcaKpRun run = lca.run_pipeline(tape);
  Prior prior;
  prior.eps = config.eps;
  prior.domain_bits = config.domain_bits;
  prior.e_small_grid = run.e_small_grid;
  return prior;
}

PriorLca::PriorLca(const oracle::InstanceAccess& access, const Prior& prior)
    : access_(&access),
      prior_(prior),
      domain_(prior.domain_bits),
      effective_threshold_(prior.e_small_grid < 0
                               ? -1
                               : std::min(prior.e_small_grid + prior.safety_cells,
                                          domain_.size() - 1)) {}

bool PriorLca::decide(double norm_profit, double efficiency) const {
  // Large items are instance-specific; the prior knows nothing about them
  // and (conservatively) declines them.  The assumed family has no large
  // items — that is precisely the regime where the prior transfers.
  if (norm_profit > prior_.eps * prior_.eps) return false;
  return effective_threshold_ >= 0 &&
         domain_.to_grid(efficiency) >= effective_threshold_;
}

bool PriorLca::answer(std::size_t i, util::Xoshiro256& /*sample_rng*/) const {
  const knapsack::Item item = access_->query(i);
  return decide(access_->norm_profit(item), access_->efficiency(item));
}

PriorEval evaluate_prior(const knapsack::Instance& instance, const PriorLca& lca) {
  PriorEval eval;
  std::vector<std::size_t> selection;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (lca.decide(instance.norm_profit(i), instance.efficiency(i))) {
      selection.push_back(i);
    }
  }
  const auto value = instance.value_of(selection);
  eval.feasible = instance.feasible(selection);
  eval.norm_value =
      static_cast<double>(value) / static_cast<double>(instance.total_profit());
  const auto greedy = knapsack::greedy_half(instance).solution.value;
  eval.vs_greedy = greedy > 0 ? static_cast<double>(value) / static_cast<double>(greedy)
                              : 0.0;
  return eval;
}

}  // namespace lcaknap::core
