#include "core/mapping_greedy.h"

namespace lcaknap::core {

std::vector<std::size_t> mapping_greedy(const knapsack::Instance& instance,
                                        const LcaKp& lca, const LcaKpRun& run) {
  std::vector<std::size_t> selection;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (lca.decide(run, i, instance.norm_profit(i), instance.efficiency(i))) {
      selection.push_back(i);
    }
  }
  return selection;
}

SolutionEval evaluate_run(const knapsack::Instance& instance, const LcaKp& lca,
                          const LcaKpRun& run) {
  SolutionEval eval;
  eval.items = mapping_greedy(instance, lca, run);
  eval.raw_value = instance.value_of(eval.items);
  eval.raw_weight = instance.weight_of(eval.items);
  eval.feasible = eval.raw_weight <= instance.capacity();
  eval.norm_value = static_cast<double>(eval.raw_value) /
                    static_cast<double>(instance.total_profit());
  return eval;
}

}  // namespace lcaknap::core
