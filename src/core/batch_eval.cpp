#include "core/batch_eval.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/batch_eval_kernels.h"
#include "oracle/access.h"

namespace lcaknap::core {

namespace detail {

void classify_lane_scalar(const ClassifyArgs& args, std::size_t lane) noexcept {
  // Mirrors LcaKp::answer_with_witness + LcaKp::decide on gathered columns:
  // the same double divisions in the same order, so the results are
  // bit-identical to the per-request path.
  const double np = args.profit_d[lane] / args.total_profit;
  const bool large = np > args.eps2;
  args.large[lane] = large ? 1 : 0;
  if (large) {
    args.answers[lane] = 0;  // membership resolved by fixup_lanes
    return;
  }
  double eff;
  if (args.weight_d[lane] == 0.0) {
    eff = std::numeric_limits<double>::infinity();
  } else {
    eff = np / (args.weight_d[lane] / args.total_weight);
  }
  args.answers[lane] = (args.small_rule && eff >= args.small_cutoff) ? 1 : 0;
}

}  // namespace detail

const char* batch_kernel_name(BatchKernel kernel) noexcept {
  switch (kernel) {
    case BatchKernel::kScalar:
      return "scalar";
    case BatchKernel::kAvx2:
      return "avx2";
    case BatchKernel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void BatchScratch::resize(std::size_t n) {
  profits.resize(n);
  weights.resize(n);
  profit_d.resize(n);
  weight_d.resize(n);
  status.resize(n);
  large.resize(n);
  answers.resize(n);
  size = n;
}

bool BatchEval::kernel_available(BatchKernel kernel) noexcept {
  switch (kernel) {
    case BatchKernel::kScalar:
      return true;
    case BatchKernel::kAvx2:
#ifdef LCAKNAP_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case BatchKernel::kAvx512:
#ifdef LCAKNAP_HAVE_AVX512
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

BatchKernel BatchEval::best_kernel() noexcept {
  if (kernel_available(BatchKernel::kAvx512)) return BatchKernel::kAvx512;
  if (kernel_available(BatchKernel::kAvx2)) return BatchKernel::kAvx2;
  return BatchKernel::kScalar;
}

void BatchEval::set_kernel(BatchKernel kernel) {
  if (!kernel_available(kernel)) {
    throw std::invalid_argument(std::string("batch kernel unavailable here: ") +
                                batch_kernel_name(kernel));
  }
  kernel_ = kernel;
}

double BatchEval::grid_lower_bound(const iky::EfficiencyDomain& domain,
                                   std::int64_t cell) {
  if (cell >= domain.size()) {
    throw std::invalid_argument("grid_lower_bound: cell beyond the grid");
  }
  // Cell 0 (and anything below) admits every efficiency the answer path can
  // produce: to_grid is always >= 0.
  if (cell <= 0) return -std::numeric_limits<double>::infinity();

  // Bit patterns of non-negative doubles are monotone in value order
  // (+0.0 = 0x0 ... +inf = 0x7FF0'0000'0000'0000), so bisect bits with the
  // scalar map as the probe.  Invariant: to_grid(lo) < cell <= to_grid(hi).
  std::uint64_t lo = std::bit_cast<std::uint64_t>(0.0);
  std::uint64_t hi =
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity());
  if (domain.to_grid(std::bit_cast<double>(lo)) >= cell ||
      domain.to_grid(std::bit_cast<double>(hi)) < cell) {
    throw std::logic_error("grid_lower_bound: bisection invariant violated");
  }
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (domain.to_grid(std::bit_cast<double>(mid)) >= cell) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double bound = std::bit_cast<double>(hi);
  // Verify both sides of the boundary: a non-monotone to_grid (e.g. a libm
  // whose log2 is not monotone) must fail loudly, never silently diverge
  // from the scalar path.
  if (domain.to_grid(bound) < cell ||
      domain.to_grid(std::bit_cast<double>(hi - 1)) >= cell) {
    throw std::logic_error("grid_lower_bound: boundary verification failed");
  }
  return bound;
}

BatchEval::BatchEval(const LcaKp& lca, const LcaKpRun& run)
    : lca_(&lca), run_(&run) {
  const oracle::InstanceAccess& access = lca.access();
  total_profit_ = static_cast<double>(access.total_profit());
  total_weight_ = static_cast<double>(access.total_weight());
  eps2_ = lca.config().eps * lca.config().eps;
  small_rule_ = run.e_small_grid >= 0;
  if (small_rule_) {
    small_cutoff_ = grid_lower_bound(lca.domain(), run.e_small_grid);
  }
  large_sorted_.assign(run.index_large.begin(), run.index_large.end());
  std::sort(large_sorted_.begin(), large_sorted_.end());
  kernel_ = best_kernel();
}

void BatchEval::gather(std::span<const std::size_t> items,
                       BatchScratch& scratch) const {
  scratch.resize(items.size());
  const oracle::InstanceAccess& access = lca_->access();
  for (std::size_t l = 0; l < items.size(); ++l) {
    try {
      const knapsack::Item item = access.query(items[l]);
      scratch.status[l] = LaneStatus::kOk;
      scratch.profits[l] = item.profit;
      scratch.weights[l] = item.weight;
      scratch.profit_d[l] = static_cast<double>(item.profit);
      scratch.weight_d[l] = static_cast<double>(item.weight);
    } catch (const oracle::OracleUnavailable&) {
      scratch.status[l] = LaneStatus::kUnavailable;
      scratch.profits[l] = 0;
      scratch.weights[l] = 0;
      scratch.profit_d[l] = 0.0;
      scratch.weight_d[l] = 0.0;
    } catch (...) {
      scratch.status[l] = LaneStatus::kError;
      scratch.profits[l] = 0;
      scratch.weights[l] = 0;
      scratch.profit_d[l] = 0.0;
      scratch.weight_d[l] = 0.0;
    }
  }
}

void BatchEval::fixup_lanes(std::span<const std::size_t> items,
                            BatchScratch& scratch) const {
  for (std::size_t l = 0; l < items.size(); ++l) {
    if (scratch.status[l] != LaneStatus::kOk) {
      scratch.large[l] = 0;
      scratch.answers[l] = 0;
      continue;
    }
    if (scratch.large[l] != 0) {
      scratch.answers[l] = std::binary_search(large_sorted_.begin(),
                                              large_sorted_.end(), items[l])
                               ? 1
                               : 0;
    }
  }
}

void BatchEval::classify_scalar(std::span<const std::size_t> items,
                                BatchScratch& scratch) const {
  detail::ClassifyArgs args;
  args.profit_d = scratch.profit_d.data();
  args.weight_d = scratch.weight_d.data();
  args.large = scratch.large.data();
  args.answers = scratch.answers.data();
  args.n = items.size();
  args.total_profit = total_profit_;
  args.total_weight = total_weight_;
  args.eps2 = eps2_;
  args.small_rule = small_rule_;
  args.small_cutoff = small_cutoff_;
  for (std::size_t l = 0; l < args.n; ++l) {
    detail::classify_lane_scalar(args, l);
  }
  fixup_lanes(items, scratch);
}

void BatchEval::classify(std::span<const std::size_t> items,
                         BatchScratch& scratch) const {
  if (kernel_ == BatchKernel::kScalar) {
    classify_scalar(items, scratch);
    return;
  }
  detail::ClassifyArgs args;
  args.profit_d = scratch.profit_d.data();
  args.weight_d = scratch.weight_d.data();
  args.large = scratch.large.data();
  args.answers = scratch.answers.data();
  args.n = items.size();
  args.total_profit = total_profit_;
  args.total_weight = total_weight_;
  args.eps2 = eps2_;
  args.small_rule = small_rule_;
  args.small_cutoff = small_cutoff_;
  switch (kernel_) {
#ifdef LCAKNAP_HAVE_AVX2
    case BatchKernel::kAvx2:
      detail::classify_avx2(args);
      break;
#endif
#ifdef LCAKNAP_HAVE_AVX512
    case BatchKernel::kAvx512:
      detail::classify_avx512(args);
      break;
#endif
    default:
      // A kernel became unreachable after set_kernel (compiled out): fall
      // back to the reference rather than crash — semantics are identical.
      classify_scalar(items, scratch);
      return;
  }
  fixup_lanes(items, scratch);
}

}  // namespace lcaknap::core
