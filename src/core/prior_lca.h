#ifndef LCAKNAP_CORE_PRIOR_LCA_H
#define LCAKNAP_CORE_PRIOR_LCA_H

#include <cstdint>

#include "core/lca.h"
#include "core/lca_kp.h"
#include "knapsack/instance.h"
#include "oracle/access.h"

/// \file prior_lca.h
/// Extension: an average-case probe in the spirit of [BCPR24], the paper's
/// Section 5 future-work direction.
///
/// When instances come from a *known distribution* (the average-case LCA
/// model), the efficiency profile of the small items concentrates, so the
/// membership threshold LCA-KP learns by sampling can instead be learned
/// *once, offline, from a reference instance* and then reused on every fresh
/// instance of the family.  The resulting `PriorLca` answers a query with a
/// single item read and zero sampling — beating even LCA-KP's cost — but the
/// prior is only as good as the distributional assumption: on an instance
/// from a different family (e.g. one with planted heavy items the prior has
/// never seen) it degrades arbitrarily.  `bench_average_case` measures both
/// sides, which is exactly the trade [BCPR24]'s model formalizes.

namespace lcaknap::core {

/// The portable part of an LCA-KP membership rule: everything except the
/// instance-specific large-item identities.
struct Prior {
  double eps = 0.25;
  int domain_bits = 12;
  /// Grid threshold for small items; -1 admits none.
  std::int64_t e_small_grid = -1;
  /// Back off this many extra grid cells as a feasibility safety margin when
  /// transferring to fresh instances (0 = use the learned threshold as-is).
  std::int64_t safety_cells = 0;
};

/// Learns a prior by running the LCA-KP pipeline once on a reference
/// instance drawn from the target distribution.
[[nodiscard]] Prior learn_prior(const knapsack::Instance& reference,
                                const LcaKpConfig& config,
                                std::uint64_t tape_seed = 1);

/// Serves fresh instances of the assumed family from the prior: one query
/// per answer, no sampling, trivially consistent (the rule is a constant).
class PriorLca final : public Lca {
 public:
  /// `access` must outlive this object.
  PriorLca(const oracle::InstanceAccess& access, const Prior& prior);

  [[nodiscard]] bool answer(std::size_t i, util::Xoshiro256& sample_rng) const override;
  [[nodiscard]] std::string name() const override { return "prior-lca"; }

  /// The decision on known item data (for offline evaluation).
  [[nodiscard]] bool decide(double norm_profit, double efficiency) const;

  [[nodiscard]] const Prior& prior() const noexcept { return prior_; }

 private:
  const oracle::InstanceAccess* access_;
  Prior prior_;
  iky::EfficiencyDomain domain_;
  std::int64_t effective_threshold_;
};

/// Offline audit of the solution a PriorLca's answers define on `instance`.
struct PriorEval {
  bool feasible = false;
  double norm_value = 0.0;
  /// Ratio against the greedy 1/2-approximation's value (a cheap yardstick
  /// available at any n).
  double vs_greedy = 0.0;
};
[[nodiscard]] PriorEval evaluate_prior(const knapsack::Instance& instance,
                                       const PriorLca& lca);

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_PRIOR_LCA_H
