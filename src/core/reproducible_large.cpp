#include "core/reproducible_large.h"

#include <cmath>
#include <stdexcept>

#include "reproducible/heavy_hitters.h"

namespace lcaknap::core {

ReproducibleLargeResult reproducible_large_items(
    const oracle::InstanceAccess& access, const ReproducibleLargeConfig& config,
    const util::Prf& prf, util::Xoshiro256& rng) {
  const double eps = config.eps;
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("reproducible_large_items: eps must be in (0, 1)");
  }
  if (!(config.window > 0.0 && config.window < 1.0)) {
    throw std::invalid_argument("reproducible_large_items: window must be in (0, 1)");
  }
  const double eps2 = eps * eps;
  const double slack = eps2 * config.window;

  std::size_t samples = config.samples;
  if (samples == 0) {
    // Resolve frequencies to well inside the slack window: the per-index
    // estimate error should be ~slack/8 for the randomized threshold to
    // separate runs only rarely.
    const double delta = slack / 8.0;
    samples = static_cast<std::size_t>(std::ceil(4.0 / (delta * delta)));
    samples = std::min<std::size_t>(samples, 4'000'000);
  }

  const std::uint64_t before = access.sample_count();
  std::vector<std::int64_t> observed;
  observed.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    // Index only: the item payload is never read.
    observed.push_back(
        static_cast<std::int64_t>(access.weighted_sample(rng).index));
  }

  reproducible::HeavyHittersParams hh;
  hh.v = eps2;
  hh.slack = slack;
  const auto hitters = reproducible::reproducible_heavy_hitters(
      observed, hh, prf, /*query_id=*/0xFA57);

  ReproducibleLargeResult result;
  result.indices.reserve(hitters.size());
  for (const auto h : hitters) {
    result.indices.push_back(static_cast<std::size_t>(h));
  }
  result.samples_used = access.sample_count() - before;
  return result;
}

}  // namespace lcaknap::core
