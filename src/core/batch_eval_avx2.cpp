// AVX2 classify kernel (4 lanes of doubles per iteration).  Compiled with
// -mavx2 under the LCAKNAP_NATIVE cmake gate; dispatched only after a runtime
// __builtin_cpu_supports("avx2") check.
//
// Byte-equality argument (Lemma 4.9 extended to the vector unit): vdivpd and
// vcmppd are IEEE-754 correctly-rounded / exact predicates, bit-identical to
// the scalar `/` and `>`/`>=` the reference performs — no FMA contraction, no
// reassociation, and the build does not enable -ffast-math.  Zero-weight
// lanes are blended to +inf *before* the efficiency compare so the 0/0 lanes
// the scalar path never divides cannot contribute a NaN.  The ragged tail
// (n % 4 lanes) goes through classify_lane_scalar, the same code path the
// reference uses.

#include <immintrin.h>

#include <limits>

#include "core/batch_eval_kernels.h"

namespace lcaknap::core::detail {

void classify_avx2(const ClassifyArgs& args) noexcept {
  const __m256d v_total_profit = _mm256_set1_pd(args.total_profit);
  const __m256d v_total_weight = _mm256_set1_pd(args.total_weight);
  const __m256d v_eps2 = _mm256_set1_pd(args.eps2);
  const __m256d v_cutoff = _mm256_set1_pd(args.small_cutoff);
  const __m256d v_inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d v_zero = _mm256_setzero_pd();

  std::size_t i = 0;
  for (; i + 4 <= args.n; i += 4) {
    const __m256d p = _mm256_loadu_pd(args.profit_d + i);
    const __m256d w = _mm256_loadu_pd(args.weight_d + i);
    const __m256d np = _mm256_div_pd(p, v_total_profit);
    const __m256d large_m = _mm256_cmp_pd(np, v_eps2, _CMP_GT_OQ);
    const __m256d nw = _mm256_div_pd(w, v_total_weight);
    __m256d eff = _mm256_div_pd(np, nw);
    const __m256d zero_w = _mm256_cmp_pd(w, v_zero, _CMP_EQ_OQ);
    eff = _mm256_blendv_pd(eff, v_inf, zero_w);
    __m256d small_ans = _mm256_cmp_pd(eff, v_cutoff, _CMP_GE_OQ);
    if (!args.small_rule) small_ans = v_zero;  // all-false mask
    // Large lanes answer 0 here; fixup_lanes resolves their membership.
    const __m256d ans = _mm256_andnot_pd(large_m, small_ans);
    const int lm = _mm256_movemask_pd(large_m);
    const int am = _mm256_movemask_pd(ans);
    for (int k = 0; k < 4; ++k) {
      args.large[i + static_cast<std::size_t>(k)] =
          static_cast<std::uint8_t>((lm >> k) & 1);
      args.answers[i + static_cast<std::size_t>(k)] =
          static_cast<std::uint8_t>((am >> k) & 1);
    }
  }
  for (; i < args.n; ++i) {
    classify_lane_scalar(args, i);
  }
}

}  // namespace lcaknap::core::detail
