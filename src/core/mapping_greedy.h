#ifndef LCAKNAP_CORE_MAPPING_GREEDY_H
#define LCAKNAP_CORE_MAPPING_GREEDY_H

#include <cstddef>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/instance.h"

/// \file mapping_greedy.h
/// Algorithm 4 (MAPPING-GREEDY): materializes the full solution C on the
/// original instance from CONVERT-GREEDY's membership rule,
///
///   C = { large items in Index_large }
///       ∪ { small items with efficiency >= e_small }   (unless B_indicator).
///
/// The LCA never runs this — it answers point queries — but the harnesses do,
/// to verify feasibility (Lemma 4.7) and value (Lemma 4.8) of the solution
/// the LCA's answers are consistent with.  It is implemented by evaluating
/// the *same* decision predicate the LCA uses for every item, so by
/// construction the materialized C agrees with the per-query answers.

namespace lcaknap::core {

/// The full solution C for a finished run, as item indices of `instance`.
[[nodiscard]] std::vector<std::size_t> mapping_greedy(
    const knapsack::Instance& instance, const LcaKp& lca, const LcaKpRun& run);

/// Evaluation record for one materialized solution.
struct SolutionEval {
  std::vector<std::size_t> items;
  bool feasible = false;
  double norm_value = 0.0;   ///< fraction of the total profit captured
  std::int64_t raw_value = 0;
  std::int64_t raw_weight = 0;
};

[[nodiscard]] SolutionEval evaluate_run(const knapsack::Instance& instance,
                                        const LcaKp& lca, const LcaKpRun& run);

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_MAPPING_GREEDY_H
