#ifndef LCAKNAP_CORE_CONSISTENCY_H
#define LCAKNAP_CORE_CONSISTENCY_H

#include <cstdint>

#include "core/lca_kp.h"
#include "knapsack/instance.h"
#include "util/thread_pool.h"

/// \file consistency.h
/// The consistency harness for Lemma 4.9 and Definitions 2.3/2.4.
///
/// It launches k independent replicas of LCA-KP — same shared seed, fresh
/// sampling randomness, optionally on separate threads — and measures how
/// consistently they answer a common query set, plus the feasibility and
/// value of the solution each replica's answers define.  This is the
/// executable form of the paper's core promise: "many instances of the
/// algorithm run independently, each providing local query access to the
/// same solution."

namespace lcaknap::core {

struct ConsistencyConfig {
  std::size_t replicas = 8;
  /// Number of distinct item indices queried (0 = every item).
  std::size_t queries = 200;
  /// Seed for the experiment's fresh randomness (replica sample tapes and
  /// query choice).  Unrelated to the LCA's shared seed.
  std::uint64_t experiment_seed = 42;
};

struct ConsistencyReport {
  std::size_t replicas = 0;
  std::size_t queries = 0;

  /// Mean over queries of the fraction of replica pairs that agree on it.
  double pairwise_agreement = 0.0;
  /// Fraction of queries on which *all* replicas agree.
  double unanimous_fraction = 0.0;
  /// Fraction of replica pairs that agree on *every* sampled query (the
  /// strictest reading of "consistent access to the same solution").
  double identical_pair_fraction = 0.0;

  /// Solution quality, per replica.
  std::size_t feasible_runs = 0;
  double mean_norm_value = 0.0;
  double min_norm_value = 0.0;
  /// mean_norm_value / opt_norm_value when an optimum was supplied (else 0).
  double mean_value_ratio = 0.0;

  double mean_samples_per_run = 0.0;

  /// Consensus solution: majority vote of the replicas' decisions on every
  /// item.  When replicas are consistent this *is* the common solution; when
  /// they are not, it is what a quorum-reading client would observe.
  bool consensus_feasible = false;
  double consensus_norm_value = 0.0;
  /// Mean over replicas of their disagreement rate with the consensus.
  double mean_divergence_from_consensus = 0.0;
};

/// Runs the experiment.  `opt_norm_value` (optional) is OPT(I) as a fraction
/// of total profit, used for the value-ratio column.  When `pool` is given,
/// replicas execute concurrently on it (exercising Definition 2.3 for real).
[[nodiscard]] ConsistencyReport run_consistency(const knapsack::Instance& instance,
                                                const LcaKpConfig& config,
                                                const ConsistencyConfig& experiment,
                                                double opt_norm_value = 0.0,
                                                util::ThreadPool* pool = nullptr);

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_CONSISTENCY_H
