#ifndef LCAKNAP_CORE_FULL_READ_LCA_H
#define LCAKNAP_CORE_FULL_READ_LCA_H

#include "core/lca.h"
#include "oracle/access.h"

/// \file full_read_lca.h
/// The Theta(n)-query baseline: read the entire instance through the oracle,
/// solve it offline, answer from the solution.  The impossibility theorems
/// (Section 3) say this is essentially unavoidable without weighted sampling;
/// the query-complexity benches plot LCA-KP's flat cost against this linear
/// one.
///
/// Consistency requires determinism: the offline solver is the deterministic
/// greedy 1/2-approximation (exact mode uses the DP referee, also
/// deterministic), so every replica reconstructs the identical solution.

namespace lcaknap::core {

class FullReadLca final : public Lca {
 public:
  enum class Solver { kGreedyHalf, kExact };

  /// `access` must outlive this object.
  explicit FullReadLca(const oracle::InstanceAccess& access,
                       Solver solver = Solver::kGreedyHalf)
      : access_(&access), solver_(solver) {}

  /// Reads all n items (n queries), solves, and answers for item i.
  [[nodiscard]] bool answer(std::size_t i, util::Xoshiro256& sample_rng) const override;
  [[nodiscard]] std::string name() const override {
    return solver_ == Solver::kExact ? "full-read-exact" : "full-read-greedy";
  }

 private:
  const oracle::InstanceAccess* access_;
  Solver solver_;
};

}  // namespace lcaknap::core

#endif  // LCAKNAP_CORE_FULL_READ_LCA_H
