#include "fleet/chaos.h"

#include <stdexcept>
#include <utility>

namespace lcaknap::fleet {

namespace {

/// Disjoint decision streams per (replica, fault class): each action class
/// rolls independent dice, so raising `fail=` cannot change which ticks
/// brown out — the same decoupling ChaosAccess guarantees per call.
enum class ChaosStream : std::uint64_t {
  kKill = 1,
  kBrownoutDuration = 3,
  kCorrupt = 4,
};

std::uint64_t stream_of(std::uint64_t replica_id, ChaosStream s) noexcept {
  return replica_id * 16 + static_cast<std::uint64_t>(s);
}

}  // namespace

const char* chaos_action_name(ChaosAction action) noexcept {
  switch (action) {
    case ChaosAction::kKill: return "kill";
    case ChaosAction::kBrownout: return "brownout";
    case ChaosAction::kCorruptSnapshot: return "corrupt_snapshot";
  }
  return "unknown";
}

ReplicaChaos::ReplicaChaos(fault::FaultPlan plan,
                           std::vector<ReplicaTarget> targets,
                           ChaosHooks hooks, util::Clock& clock,
                           metrics::Registry& registry)
    : plan_(std::move(plan)),
      targets_(std::move(targets)),
      alive_(targets_.size(), true),
      hooks_(std::move(hooks)),
      clock_(&clock),
      prf_(plan_.seed()),
      kills_counter_(&registry.counter(
          "fleet_chaos_kills_total", "Replicas killed by the chaos driver")),
      brownouts_counter_(&registry.counter(
          "fleet_chaos_brownouts_total",
          "Replica brownouts (paused process) fired by the chaos driver")),
      corruptions_counter_(&registry.counter(
          "fleet_chaos_snapshot_corruptions_total",
          "Shipped snapshots corrupted in flight by the chaos driver")) {
  if (targets_.empty()) {
    throw std::invalid_argument("ReplicaChaos: at least one target required");
  }
}

void ReplicaChaos::arm() {
  armed_ = true;
  armed_at_us_ = clock_->now_us();
  tick_index_ = 0;
}

void ReplicaChaos::revive(std::uint64_t replica_id) {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i].replica_id == replica_id) alive_[i] = true;
  }
}

std::size_t ReplicaChaos::tick() {
  if (!armed_) return 0;
  const std::uint64_t elapsed = clock_->now_us() - armed_at_us_;
  const auto& phase = plan_.phase_at(elapsed);
  const std::uint64_t tick = tick_index_++;
  std::size_t fired = 0;

  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (!alive_[i]) continue;
    const auto& target = targets_[i];
    const auto id = target.replica_id;

    if (phase.corrupt_rate > 0.0 &&
        prf_.uniform(stream_of(id, ChaosStream::kCorrupt), tick) <
            phase.corrupt_rate) {
      events_.push_back({elapsed, id, ChaosAction::kCorruptSnapshot,
                         phase.label, 0});
      corruptions_counter_->inc();
      ++fired;
      if (hooks_.corrupt_snapshot) hooks_.corrupt_snapshot(target);
    }

    if (phase.latency_max_us > 0) {
      // Latency phases apply throughout (matching per-call injection in
      // ChaosAccess): every tick pauses, only the duration is drawn.
      const auto span = phase.latency_max_us - phase.latency_min_us;
      const auto pause =
          phase.latency_min_us +
          static_cast<std::uint64_t>(
              prf_.uniform(stream_of(id, ChaosStream::kBrownoutDuration),
                           tick) *
              static_cast<double>(span + 1));
      events_.push_back(
          {elapsed, id, ChaosAction::kBrownout, phase.label, pause});
      brownouts_counter_->inc();
      ++fired;
      if (hooks_.brownout) hooks_.brownout(target, pause);
    }

    if (phase.fail_rate > 0.0 &&
        prf_.uniform(stream_of(id, ChaosStream::kKill), tick) <
            phase.fail_rate) {
      events_.push_back({elapsed, id, ChaosAction::kKill, phase.label, 0});
      kills_counter_->inc();
      ++fired;
      alive_[i] = false;  // dead until revive()
      if (hooks_.kill) hooks_.kill(target);
    }
  }
  return fired;
}

}  // namespace lcaknap::fleet
