#include "fleet/bootstrap.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "net/client.h"
#include "net/wire.h"

namespace lcaknap::fleet {

ShipResult ship_snapshot(const std::string& source_path,
                         const std::string& dest_dir,
                         const std::string& tenant_id) {
  std::error_code ec;
  std::filesystem::create_directories(dest_dir, ec);
  if (ec) {
    throw std::runtime_error("ship_snapshot: create " + dest_dir + ": " +
                             ec.message());
  }
  std::ifstream in(source_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ship_snapshot: cannot read " + source_path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  const std::string final_path = dest_dir + "/" + tenant_id + ".snap";
  const std::string temp = final_path + ".ship.tmp";
  {
    std::ofstream os(temp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("ship_snapshot: cannot write " + temp);
    }
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      throw std::runtime_error("ship_snapshot: short write to " + temp);
    }
  }
  // Atomic publish: a restoring replica that races this sees the old file
  // or the new file whole, never a torn prefix.
  std::filesystem::rename(temp, final_path, ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw std::runtime_error("ship_snapshot: rename " + temp + " -> " +
                             final_path + ": " + ec.message());
  }
  return ShipResult{final_path, bytes.size()};
}

void corrupt_snapshot_byte(const std::string& path, std::uint64_t offset) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) {
    throw std::runtime_error("corrupt_snapshot_byte: unreadable or empty " +
                             path);
  }
  const auto at = static_cast<std::streamoff>(offset % size);
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) {
    throw std::runtime_error("corrupt_snapshot_byte: cannot open " + path);
  }
  file.seekg(at);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ static_cast<char>(0xFF));
  file.seekp(at);
  file.write(&byte, 1);
  file.flush();
  if (!file) {
    throw std::runtime_error("corrupt_snapshot_byte: write failed on " + path);
  }
}

bool wait_ready(const std::string& host, std::uint16_t port,
                const std::vector<std::string>& tenants,
                std::uint64_t timeout_us, util::Clock& clock,
                std::uint64_t poll_interval_us) {
  const std::uint64_t deadline = clock.now_us() + timeout_us;
  std::uint64_t probe_id = 1;
  while (true) {
    bool all_warm = true;
    try {
      net::Client client(host, port);
      for (const auto& tenant : tenants) {
        net::RequestFrame probe;
        probe.flags = net::RequestFrame::kFlagHealth;
        probe.request_id = probe_id++;
        probe.tenant = tenant;
        const auto response = client.call(probe);
        if (response.status != net::WireStatus::kOk || response.answer == 0) {
          all_warm = false;
          break;
        }
      }
    } catch (const net::ConnectionLost&) {
      all_warm = false;  // not listening yet, or died between polls
    }
    if (all_warm) return true;
    if (clock.now_us() >= deadline) return false;
    clock.sleep_us(poll_interval_us);
  }
}

}  // namespace lcaknap::fleet
