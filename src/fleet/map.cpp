#include "fleet/map.h"

#include <algorithm>
#include <stdexcept>

namespace lcaknap::fleet {

namespace {

/// FNV-1a over the tenant id; the Prf then mixes the result onto the ring,
/// so tenants that differ in one byte land far apart.
std::uint64_t fnv1a(const std::string& text) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

const char* rebalance_kind_name(RebalanceEvent::Kind kind) noexcept {
  switch (kind) {
    case RebalanceEvent::Kind::kGroupAdded: return "group_added";
    case RebalanceEvent::Kind::kGroupRemoved: return "group_removed";
    case RebalanceEvent::Kind::kTenantTracked: return "tenant_tracked";
    case RebalanceEvent::Kind::kTenantMoved: return "tenant_moved";
  }
  return "unknown";
}

FleetMap::FleetMap(FleetMapConfig config, metrics::Registry& registry)
    : config_(config),
      prf_(config.seed),
      groups_gauge_(&registry.gauge(
          "fleet_groups", "Replica groups currently on the placement ring")),
      moves_counter_(&registry.counter(
          "fleet_rebalance_moves_total",
          "Tracked tenants re-homed by fleet membership changes")) {
  if (config_.vnodes == 0) {
    throw std::invalid_argument("FleetMap: vnodes must be positive");
  }
}

void FleetMap::add_group(std::uint64_t group_id) {
  if (std::find(group_ids_.begin(), group_ids_.end(), group_id) !=
      group_ids_.end()) {
    throw std::invalid_argument("FleetMap: group " + std::to_string(group_id) +
                                " already on the ring");
  }
  const auto key = prf_.subkey(group_id);
  for (std::size_t v = 0; v < config_.vnodes; ++v) {
    // Collisions across groups are astronomically unlikely but would make
    // placement insertion-order dependent; probe to keep it a pure function
    // of the membership *set*.
    std::uint64_t point = key.word(v, 0);
    while (ring_.count(point) != 0) ++point;
    ring_.emplace(point, group_id);
  }
  group_ids_.push_back(group_id);
  groups_gauge_->add(1.0);
  events_.push_back({RebalanceEvent::Kind::kGroupAdded, group_id, {}, 0, 0});
  rehome_tracked();
}

void FleetMap::remove_group(std::uint64_t group_id) {
  const auto it = std::find(group_ids_.begin(), group_ids_.end(), group_id);
  if (it == group_ids_.end()) {
    throw std::invalid_argument("FleetMap: group " + std::to_string(group_id) +
                                " is not on the ring");
  }
  if (group_ids_.size() == 1 && !tracked_.empty()) {
    throw std::invalid_argument(
        "FleetMap: cannot remove the last group while tenants are tracked");
  }
  for (auto ring_it = ring_.begin(); ring_it != ring_.end();) {
    if (ring_it->second == group_id) {
      ring_it = ring_.erase(ring_it);
    } else {
      ++ring_it;
    }
  }
  group_ids_.erase(it);
  groups_gauge_->add(-1.0);
  events_.push_back({RebalanceEvent::Kind::kGroupRemoved, group_id, {}, 0, 0});
  rehome_tracked();
}

void FleetMap::track(const std::string& tenant) {
  if (tracked_.count(tenant) != 0) return;
  const auto home = group_of(tenant);
  tracked_.emplace(tenant, home);
  events_.push_back(
      {RebalanceEvent::Kind::kTenantTracked, 0, tenant, 0, home});
}

std::uint64_t FleetMap::point_of_tenant(const std::string& tenant) const {
  return prf_.word(fnv1a(tenant), 0);
}

std::uint64_t FleetMap::group_of(const std::string& tenant) const {
  if (ring_.empty()) {
    throw std::logic_error("FleetMap: no groups on the ring");
  }
  const auto it = ring_.lower_bound(point_of_tenant(tenant));
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

std::vector<std::uint64_t> FleetMap::groups() const { return group_ids_; }

std::vector<std::uint64_t> FleetMap::preference_of(
    const std::string& tenant) const {
  if (ring_.empty()) {
    throw std::logic_error("FleetMap: no groups on the ring");
  }
  std::vector<std::uint64_t> order;
  order.reserve(group_ids_.size());
  auto it = ring_.lower_bound(point_of_tenant(tenant));
  // Walk the ring clockwise from the tenant's point, keeping the first
  // appearance of each group: the home group, then its natural successors.
  for (std::size_t steps = 0;
       steps < ring_.size() && order.size() < group_ids_.size(); ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(order.begin(), order.end(), it->second) == order.end()) {
      order.push_back(it->second);
    }
    ++it;
  }
  return order;
}

void FleetMap::rehome_tracked() {
  if (ring_.empty()) return;
  for (auto& [tenant, home] : tracked_) {
    const auto now = group_of(tenant);
    if (now == home) continue;
    events_.push_back(
        {RebalanceEvent::Kind::kTenantMoved, 0, tenant, home, now});
    home = now;
    ++moves_;
    moves_counter_->inc();
  }
}

}  // namespace lcaknap::fleet
