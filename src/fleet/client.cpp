#include "fleet/client.h"

#include <algorithm>
#include <stdexcept>

namespace lcaknap::fleet {

const char* disposition_name(Disposition d) noexcept {
  switch (d) {
    case Disposition::kOk: return "ok";
    case Disposition::kFailedOver: return "failed_over";
    case Disposition::kDegraded: return "degraded";
    case Disposition::kOverloaded: return "overloaded";
    case Disposition::kDeadline: return "deadline";
    case Disposition::kError: return "error";
  }
  return "unknown";
}

FleetClient::FleetClient(FleetClientConfig config, util::Clock& clock,
                         metrics::Registry& registry)
    : config_(std::move(config)),
      clock_(&clock),
      map_(config_.map, registry),
      jitter_(config_.jitter_seed),
      failover_attempts_counter_(&registry.counter(
          "fleet_failover_attempts_total",
          "Query attempts past the first candidate replica")),
      backoff_sleep_counter_(&registry.counter(
          "fleet_backoff_sleep_us",
          "Microseconds slept in failover backoff (decorrelated jitter)")) {
  if (config_.replicas.empty()) {
    throw std::invalid_argument("FleetClient: at least one replica required");
  }
  for (const auto& endpoint : config_.replicas) {
    const auto groups = map_.groups();
    if (std::find(groups.begin(), groups.end(), endpoint.group) ==
        groups.end()) {
      map_.add_group(endpoint.group);
    }
    replicas_.push_back(Replica{endpoint, nullptr});
  }
  for (std::size_t d = 0; d < kDispositionCount; ++d) {
    queries_by_disposition_[d] = &registry.counter(
        "fleet_queries_total", "Fleet queries settled, by disposition",
        {{"disposition", disposition_name(static_cast<Disposition>(d))}});
  }
}

std::vector<std::size_t> FleetClient::candidates_of(
    const std::string& tenant) const {
  const auto order = map_.preference_of(tenant);
  std::vector<std::size_t> candidates;
  candidates.reserve(replicas_.size());
  for (const auto group : order) {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].endpoint.group == group) candidates.push_back(i);
    }
  }
  return candidates;
}

void FleetClient::settle(Disposition d) {
  ++stats_.by_disposition[static_cast<std::size_t>(d)];
  queries_by_disposition_[static_cast<std::size_t>(d)]->inc();
}

void FleetClient::backoff(std::uint64_t query_index, std::size_t hop,
                          std::uint64_t* prev_us,
                          std::uint64_t budget_edge_us) {
  // Decorrelated jitter (mirrors oracle::RetryConfig): uniform in
  // [base, prev * multiplier], clamped to the max, never past the budget.
  const double span =
      static_cast<double>(*prev_us) * config_.backoff_multiplier;
  const double hi = std::max(static_cast<double>(config_.base_backoff_us), span);
  const double u = jitter_.uniform(query_index, hop);
  auto sleep_us = static_cast<std::uint64_t>(
      static_cast<double>(config_.base_backoff_us) +
      u * (hi - static_cast<double>(config_.base_backoff_us)));
  sleep_us = std::min(sleep_us, config_.max_backoff_us);
  if (budget_edge_us != 0) {
    const auto now = clock_->now_us();
    if (now >= budget_edge_us) return;  // budget spent; settle upstream
    sleep_us = std::min(sleep_us, budget_edge_us - now);
  }
  *prev_us = sleep_us;
  stats_.backoff_sleep_us += sleep_us;
  backoff_sleep_counter_->inc(sleep_us);
  clock_->sleep_us(sleep_us);
}

FleetResult FleetClient::query(const std::string& tenant, std::uint64_t item,
                               std::uint64_t deadline_us) {
  const std::uint64_t query_index = next_request_id_++;
  ++stats_.offered;

  net::RequestFrame request;
  request.request_id = query_index;
  request.item = item;
  request.deadline_us = deadline_us;
  request.tenant = tenant;

  const std::uint64_t budget_edge_us =
      config_.attempt_budget_us == 0
          ? 0
          : clock_->now_us() + config_.attempt_budget_us;

  const auto candidates = candidates_of(tenant);
  const std::size_t attempts_allowed =
      std::min(config_.max_attempts, candidates.size());

  FleetResult result;
  bool saw_overload = false;
  std::uint64_t prev_backoff_us = config_.base_backoff_us;

  for (std::size_t hop = 0; hop < attempts_allowed; ++hop) {
    if (budget_edge_us != 0 && clock_->now_us() >= budget_edge_us) {
      result.disposition = Disposition::kDeadline;
      settle(result.disposition);
      return result;
    }
    if (hop > 0) {
      ++stats_.failover_attempts;
      failover_attempts_counter_->inc();
      backoff(query_index, hop, &prev_backoff_us, budget_edge_us);
      if (budget_edge_us != 0 && clock_->now_us() >= budget_edge_us) {
        result.disposition = Disposition::kDeadline;
        settle(result.disposition);
        return result;
      }
    }
    auto& replica = replicas_[candidates[hop]];
    ++result.attempts;
    try {
      if (replica.client == nullptr || !replica.client->connected()) {
        replica.client = std::make_unique<net::Client>(replica.endpoint.host,
                                                       replica.endpoint.port);
      }
      const auto response = replica.client->call(request);
      result.status = response.status;
      result.answer = response.answer != 0;
      result.cache_hit = response.cache_hit != 0;
      result.replica_id = response.replica_id;
      switch (response.status) {
        case net::WireStatus::kOk:
          result.disposition =
              hop == 0 ? Disposition::kOk : Disposition::kFailedOver;
          settle(result.disposition);
          return result;
        case net::WireStatus::kDegraded:
          result.disposition = Disposition::kDegraded;
          settle(result.disposition);
          return result;
        case net::WireStatus::kDeadlineExceeded:
          result.disposition = Disposition::kDeadline;
          settle(result.disposition);
          return result;
        case net::WireStatus::kOverloaded:
          saw_overload = true;
          continue;  // alive but shedding: fail over, keep the connection
        case net::WireStatus::kShuttingDown:
          // Going away; do not reuse this connection for later queries.
          replica.client.reset();
          continue;
        case net::WireStatus::kError:
        case net::WireStatus::kBadRequest:
        case net::WireStatus::kUnknownTenant:
          // Deterministic fleet: a sibling would answer identically, so a
          // terminal status settles the query instead of burning hops.
          result.disposition = Disposition::kError;
          settle(result.disposition);
          return result;
      }
    } catch (const net::ConnectionLost&) {
      // Replica dead (connect refused, reset mid-pipeline, closed with the
      // response outstanding): drop the connection and try a sibling.
      replica.client.reset();
      continue;
    }
    // WireDecodeError propagates: a malformed frame is a protocol bug, not
    // a dead replica, and must not be masked by failover.
  }

  result.disposition =
      saw_overload ? Disposition::kOverloaded : Disposition::kError;
  settle(result.disposition);
  return result;
}

}  // namespace lcaknap::fleet
