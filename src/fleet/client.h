#ifndef LCAKNAP_FLEET_CLIENT_H
#define LCAKNAP_FLEET_CLIENT_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/map.h"
#include "metrics/metrics.h"
#include "net/client.h"
#include "net/wire.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

/// \file client.h
/// The fleet front door: route by the placement map, fail over by Lemma 4.9.
///
/// A `FleetClient` holds one lazy `net::Client` per replica endpoint and
/// answers each query by walking the tenant's preference order (home group
/// first, then successive arc owners — `FleetMap::preference_of`).  Because
/// every replica computes answers as a pure function of the shared seed,
/// retrying a *different* replica after a failure is semantically free: the
/// sibling returns the byte-identical answer the dead replica would have.
/// Failover is therefore the default response to a retryable failure:
///
///   * `net::ConnectionLost`  — replica dead or dying: drop the cached
///     connection, back off (decorrelated jitter on the injected clock,
///     mirroring `oracle::RetryConfig`), try the next candidate;
///   * `kOverloaded` / `kShuttingDown` — replica alive but shedding: same
///     failover path, no connection teardown for overload;
///   * `WireDecodeError` — the *frame* is malformed, not the replica;
///     retrying elsewhere would re-decode garbage, so it propagates.
///
/// Each query runs under a deadline budget (`attempt_budget_us` on the
/// injected clock): backoff sleeps and attempts stop when the budget is
/// spent and the query settles as `kDeadline`.
///
/// Every offered query settles in exactly one disposition — the fleet
/// conservation law the drill asserts:
///
///   offered == ok + failed_over + degraded + overloaded + deadline + error
///
/// (`ok` = first-candidate success; `failed_over` = success after at least
/// one failover hop; `degraded` = a kDegraded answer, wherever served.)
/// Metrics: `fleet_queries_total{disposition}`, `fleet_failover_attempts_total`,
/// `fleet_backoff_sleep_us` (docs/OBSERVABILITY.md, docs/FLEET.md).

namespace lcaknap::fleet {

/// One replica's address.  `replica_id` is what the server echoes on its
/// responses (ServerConfig::replica_id); `group` places it on the map.
struct ReplicaEndpoint {
  std::uint64_t replica_id = 0;
  std::uint64_t group = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct FleetClientConfig {
  std::vector<ReplicaEndpoint> replicas;
  FleetMapConfig map;
  /// Candidates tried per query before settling (capped by replica count).
  std::size_t max_attempts = 4;
  /// Per-query wall budget on the injected clock; 0 = unlimited.  Spent
  /// budget settles the query kDeadline even if candidates remain.
  std::uint64_t attempt_budget_us = 0;
  /// Decorrelated-jitter backoff between failover hops, mirroring
  /// oracle::RetryConfig: sleep ~ U[base, prev*multiplier], clamped to max.
  std::uint64_t base_backoff_us = 200;
  std::uint64_t max_backoff_us = 100'000;
  double backoff_multiplier = 3.0;
  std::uint64_t jitter_seed = 0x7E77;
};

/// How one offered query settled (the conservation partition).
enum class Disposition : std::uint8_t {
  kOk = 0,          ///< answered kOk by the first candidate
  kFailedOver = 1,  ///< answered kOk after >= 1 failover hop
  kDegraded = 2,    ///< answered kDegraded (served, flagged)
  kOverloaded = 3,  ///< every candidate shed kOverloaded
  kDeadline = 4,    ///< budget spent (or the server said kDeadlineExceeded)
  kError = 5,       ///< unreachable fleet or a terminal error status
};
inline constexpr std::size_t kDispositionCount = 6;

[[nodiscard]] const char* disposition_name(Disposition d) noexcept;

struct FleetResult {
  Disposition disposition = Disposition::kError;
  /// Final wire status (kError disposition with status kOk means the fleet
  /// was unreachable and no response exists).
  net::WireStatus status = net::WireStatus::kError;
  bool answer = false;
  bool cache_hit = false;
  /// Which replica answered (echoed replica_id); 0 if none did.
  std::uint64_t replica_id = 0;
  /// Candidates tried (1 = no failover).
  std::size_t attempts = 0;
};

struct FleetStats {
  std::uint64_t offered = 0;
  std::array<std::uint64_t, kDispositionCount> by_disposition{};
  std::uint64_t failover_attempts = 0;  ///< hops past the first candidate
  std::uint64_t backoff_sleep_us = 0;   ///< total jitter slept

  [[nodiscard]] std::uint64_t settled() const noexcept {
    std::uint64_t sum = 0;
    for (const auto count : by_disposition) sum += count;
    return sum;
  }
  /// The fleet conservation law; holds at every quiescent point.
  [[nodiscard]] bool conserved() const noexcept { return offered == settled(); }
};

class FleetClient {
 public:
  /// Builds the placement map from the endpoint list (each distinct group
  /// joins the ring once, in listing order).  Throws std::invalid_argument
  /// on an empty replica list.  Connections are opened lazily per replica.
  explicit FleetClient(FleetClientConfig config,
                       util::Clock& clock,
                       metrics::Registry& registry = metrics::global_registry());

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  /// One fleet query; never throws on replica failure (that is the point) —
  /// only on local misuse (e.g. WireDecodeError bubbling a protocol bug).
  [[nodiscard]] FleetResult query(const std::string& tenant, std::uint64_t item,
                                  std::uint64_t deadline_us = 0);

  [[nodiscard]] const FleetMap& map() const noexcept { return map_; }
  [[nodiscard]] FleetStats stats() const noexcept { return stats_; }

 private:
  struct Replica {
    ReplicaEndpoint endpoint;
    std::unique_ptr<net::Client> client;  ///< lazy; reset on ConnectionLost
  };

  /// Candidate replica indices for `tenant`, in failover order.
  [[nodiscard]] std::vector<std::size_t> candidates_of(const std::string& tenant) const;
  void settle(Disposition d);
  void backoff(std::uint64_t query_index, std::size_t hop, std::uint64_t* prev_us,
               std::uint64_t budget_edge_us);

  FleetClientConfig config_;
  util::Clock* clock_;
  FleetMap map_;
  std::vector<Replica> replicas_;
  util::Prf jitter_;
  std::uint64_t next_request_id_ = 1;
  FleetStats stats_;

  std::array<metrics::Counter*, kDispositionCount> queries_by_disposition_{};
  metrics::Counter* failover_attempts_counter_;
  metrics::Counter* backoff_sleep_counter_;
};

}  // namespace lcaknap::fleet

#endif  // LCAKNAP_FLEET_CLIENT_H
