#ifndef LCAKNAP_FLEET_BOOTSTRAP_H
#define LCAKNAP_FLEET_BOOTSTRAP_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/virtual_clock.h"

/// \file bootstrap.h
/// Snapshot-shipped replica bootstrap.
///
/// A joining replica should not pay the one-time Theorem 4.1 warm-up when a
/// sibling already holds the resulting `(L(I~), EPS)` state: the fleet ships
/// a verified `.snap` into the newcomer's store directory and the existing
/// `StateStore` hydration path does the rest — fingerprint-checked restore,
/// with *typed rejection* of anything stale, truncated, or corrupted, which
/// falls back to a live warm-up.  A rejected snapshot is never served; the
/// worst outcome of a corrupted shipment is the cold-start cost (E21 pins
/// the good case at <= 10x a local snapshot restore).
///
/// `ship_snapshot` follows the store's own crash-safety discipline: write
/// the copy to a temp file in the destination directory, fsync, then
/// atomically rename into place.  A reader that races the shipment sees the
/// complete old file or the complete new file, never a torn prefix — the
/// atomic-rename race test in tests/store pins the reader side.
///
/// `wait_ready` polls the wire-level health frame (`RequestFrame::kFlagHealth`,
/// docs/NETWORKING.md) until every named tenant reports warm.  The probe is
/// answered on the server's event loop from the hydration state machine, so
/// a replica mid-restore answers "not ready" instantly instead of parking
/// the probe behind the very hydration it is asking about.

namespace lcaknap::fleet {

struct ShipResult {
  std::string path;         ///< final `.snap` path in the destination store
  std::uint64_t bytes = 0;  ///< snapshot size shipped
};

/// Copies `source_path` into `dest_dir` as `<tenant_id>.snap` (the
/// StateStore's snapshot naming) via temp file + fsync + atomic rename.
/// Throws std::system_error / std::runtime_error on I/O failure; performs
/// no content verification — that is deliberately left to the restoring
/// replica's fingerprint check, which is the trust boundary.
ShipResult ship_snapshot(const std::string& source_path,
                         const std::string& dest_dir,
                         const std::string& tenant_id);

/// Flips one byte of `path` in place (XOR 0xFF at `offset`, clamped to the
/// file).  The chaos driver's snapshot-corruption fault: exercises the
/// restoring replica's typed-rejection path.  Throws on I/O failure or an
/// empty file.
void corrupt_snapshot_byte(const std::string& path, std::uint64_t offset);

/// Polls health frames against `host:port` until every tenant in `tenants`
/// reports warm, the deadline passes, or the port stays unreachable.
/// Returns true when warm.  Connection failures are expected early (the
/// replica may not be listening yet) and count as "not ready yet".
bool wait_ready(const std::string& host, std::uint16_t port,
                const std::vector<std::string>& tenants,
                std::uint64_t timeout_us, util::Clock& clock,
                std::uint64_t poll_interval_us = 20'000);

}  // namespace lcaknap::fleet

#endif  // LCAKNAP_FLEET_BOOTSTRAP_H
