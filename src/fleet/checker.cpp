#include "fleet/checker.h"

#include <stdexcept>
#include <utility>

namespace lcaknap::fleet {

ConsistencyChecker::ConsistencyChecker(std::vector<CheckerEndpoint> endpoints,
                                       metrics::Registry& registry)
    : checks_counter_(&registry.counter(
          "fleet_checks_total",
          "Cross-replica consistency probes completed")),
      divergences_counter_(&registry.counter(
          "fleet_divergences_total",
          "Probes where two served answers disagreed (Lemma 4.9 violation; "
          "must stay 0)")),
      unavailable_counter_(&registry.counter(
          "fleet_check_unavailable_total",
          "Endpoint unreachable during a consistency probe")) {
  if (endpoints.size() < 2) {
    throw std::invalid_argument(
        "ConsistencyChecker: need at least two endpoints to cross-check");
  }
  for (auto& endpoint : endpoints) {
    endpoints_.push_back(Endpoint{std::move(endpoint), nullptr});
  }
}

bool ConsistencyChecker::check(const std::string& tenant, std::uint64_t item) {
  std::vector<CheckObservation> observations;
  observations.reserve(endpoints_.size());

  for (auto& endpoint : endpoints_) {
    CheckObservation seen;
    seen.replica_id = endpoint.config.replica_id;
    net::RequestFrame request;
    request.request_id = next_request_id_++;
    request.item = item;
    request.tenant = tenant;
    try {
      if (endpoint.client == nullptr || !endpoint.client->connected()) {
        endpoint.client = std::make_unique<net::Client>(endpoint.config.host,
                                                        endpoint.config.port);
      }
      const auto response = endpoint.client->call(request);
      seen.reachable = true;
      seen.status = response.status;
      seen.answer = response.answer != 0;
    } catch (const net::ConnectionLost&) {
      endpoint.client.reset();
      ++report_.unavailable;
      unavailable_counter_->inc();
    }
    observations.push_back(seen);
  }

  ++report_.checks;
  checks_counter_->inc();

  // Compare within each answer class: kOk against kOk, kDegraded against
  // kDegraded.  A refusal is not an answer and joins neither class.
  bool diverged = false;
  for (const auto status :
       {net::WireStatus::kOk, net::WireStatus::kDegraded}) {
    const CheckObservation* first = nullptr;
    for (const auto& seen : observations) {
      if (!seen.reachable) continue;
      if (seen.status != status) {
        continue;
      }
      if (first == nullptr) {
        first = &seen;
        continue;
      }
      ++report_.comparisons;
      if (seen.answer != first->answer) diverged = true;
    }
  }
  for (const auto& seen : observations) {
    if (seen.reachable && seen.status != net::WireStatus::kOk &&
        seen.status != net::WireStatus::kDegraded) {
      ++report_.non_ok;
    }
  }
  if (diverged) {
    ++report_.divergences;
    divergences_counter_->inc();
    report_.details.push_back({tenant, item, observations});
  }
  return !diverged;
}

}  // namespace lcaknap::fleet
