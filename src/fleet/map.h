#ifndef LCAKNAP_FLEET_MAP_H
#define LCAKNAP_FLEET_MAP_H

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.h"
#include "util/rng.h"

/// \file map.h
/// Consistent-hash placement of tenants across replica groups.
///
/// Lemma 4.9 makes placement a pure load-balancing decision: every replica
/// built from the same shared seed serves byte-identical answers, so the map
/// never decides *correctness*, only *affinity* — which group a tenant's
/// queries land on first, and therefore whose cache stays hot for it.  That
/// is the Rubinfeld et al. parallelization argument at fleet granularity:
/// "implemented in parallel on different machines with no coordination"
/// still wants each machine to see a stable slice of the key space.
///
/// The ring is deterministic: each group contributes `vnodes` points at
/// `Prf(seed).subkey(group).word(vnode, 0)`, and a tenant hashes to the
/// first point clockwise from `Prf(seed).word(fnv1a(tenant), 0)`.  Two
/// processes that build a `FleetMap` with the same (seed, vnodes, groups)
/// agree on every placement with no coordination — the fleet client and
/// the consistency checker both rely on this, and tests/fleet/test_map.cpp
/// pins golden placements so the function cannot drift silently.
///
/// Membership changes emit a typed `RebalanceEvent` per observable effect.
/// Consistent hashing keeps disruption minimal: adding or removing one
/// group moves only the tenants whose arc it owned (~tracked/groups of
/// them), never reshuffles the rest — also pinned by tests.

namespace lcaknap::fleet {

struct FleetMapConfig {
  /// Virtual nodes per group; more vnodes = smoother balance, larger ring.
  std::size_t vnodes = 64;
  /// Ring seed.  Every process in the fleet must use the same value (it is
  /// part of the shared-seed contract, like the LCA tape seed).
  std::uint64_t seed = 0xF1EE7;
};

/// One observable effect of a membership change or tracking call.
struct RebalanceEvent {
  enum class Kind {
    kGroupAdded,      ///< group joined the ring
    kGroupRemoved,    ///< group left the ring
    kTenantTracked,   ///< tenant registered; `to_group` is its placement
    kTenantMoved,     ///< membership change re-homed a tracked tenant
  };
  Kind kind;
  std::uint64_t group = 0;      ///< subject group (add/remove)
  std::string tenant;           ///< subject tenant (tracked/moved)
  std::uint64_t from_group = 0; ///< previous home (moved only)
  std::uint64_t to_group = 0;   ///< new home (tracked/moved)
};

[[nodiscard]] const char* rebalance_kind_name(RebalanceEvent::Kind kind) noexcept;

class FleetMap {
 public:
  explicit FleetMap(FleetMapConfig config = {},
                    metrics::Registry& registry = metrics::global_registry());

  /// Adds a replica group's vnodes to the ring; re-homes tracked tenants,
  /// emitting kTenantMoved per change.  Throws std::invalid_argument on a
  /// duplicate group id.
  void add_group(std::uint64_t group_id);
  /// Removes a group; its tracked tenants move to the next arc owner.
  /// Throws std::invalid_argument if the group is absent or it is the last
  /// group while tenants are tracked (they would have no home).
  void remove_group(std::uint64_t group_id);

  /// Registers a tenant so membership changes report its moves.  Idempotent.
  void track(const std::string& tenant);

  /// The group owning `tenant`'s arc.  Pure function of (seed, vnodes,
  /// current groups, tenant) — identical across processes.  Throws
  /// std::logic_error on an empty ring.
  [[nodiscard]] std::uint64_t group_of(const std::string& tenant) const;

  [[nodiscard]] std::vector<std::uint64_t> groups() const;
  /// Groups ordered by failover preference for `tenant`: its home group
  /// first, then successive arc owners clockwise (each group once).  The
  /// fleet client walks this order when a replica is dead or shedding.
  [[nodiscard]] std::vector<std::uint64_t> preference_of(
      const std::string& tenant) const;

  [[nodiscard]] const std::vector<RebalanceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t moves() const noexcept { return moves_; }

 private:
  [[nodiscard]] std::uint64_t point_of_tenant(const std::string& tenant) const;
  void rehome_tracked();

  FleetMapConfig config_;
  util::Prf prf_;
  std::map<std::uint64_t, std::uint64_t> ring_;  ///< point -> group
  std::vector<std::uint64_t> group_ids_;         ///< insertion order
  std::unordered_map<std::string, std::uint64_t> tracked_;  ///< tenant -> home
  std::vector<RebalanceEvent> events_;
  std::uint64_t moves_ = 0;

  metrics::Gauge* groups_gauge_;
  metrics::Counter* moves_counter_;
};

}  // namespace lcaknap::fleet

#endif  // LCAKNAP_FLEET_MAP_H
