#ifndef LCAKNAP_FLEET_CHAOS_H
#define LCAKNAP_FLEET_CHAOS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "metrics/metrics.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

/// \file chaos.h
/// Chaos drills at *replica* granularity.
///
/// `fault::ChaosAccess` injects faults per oracle call; `ReplicaChaos`
/// re-targets the same scripted `FaultPlan` grammar at whole replicas.  The
/// phase knobs are reinterpreted at process scale:
///
///   * `fail=R`        — each tick, each target is killed (SIGKILL through
///                       the hook) with probability R;
///   * `lat=A..B`      — brownout: the target is paused for a duration
///                       drawn uniformly in [A, B] us (SIGSTOP/SIGCONT in
///                       the orchestrator, an engine stall in unit tests);
///   * `corrupt=R`     — with probability R the target's *shipped snapshot*
///                       is corrupted in flight, exercising the restoring
///                       replica's typed-rejection path.
///
/// Actions are delivered through injected `ChaosHooks`, so unit tests drive
/// in-process stand-ins on a `VirtualClock` while the fleet orchestrator
/// installs real `kill(2)`-based hooks.  Per-tick decisions are a pure
/// function of (plan seed, replica_id, tick index) via `util::Prf` —
/// replaying a drill reproduces the identical kill schedule, the property
/// tests/fleet/test_chaos.cpp pins.  Every action lands in a typed
/// `ChaosEvent` log so a drill report can say exactly what was done to
/// whom, when, and under which phase.

namespace lcaknap::fleet {

struct ReplicaTarget {
  std::uint64_t replica_id = 0;
  std::string label;  ///< for event logs and drill reports
};

enum class ChaosAction : std::uint8_t {
  kKill = 0,
  kBrownout = 1,
  kCorruptSnapshot = 2,
};

[[nodiscard]] const char* chaos_action_name(ChaosAction action) noexcept;

struct ChaosEvent {
  std::uint64_t at_us = 0;  ///< elapsed armed time when the action fired
  std::uint64_t replica_id = 0;
  ChaosAction action = ChaosAction::kKill;
  std::string phase;               ///< label of the plan phase in force
  std::uint64_t brownout_us = 0;   ///< drawn pause length (kBrownout only)
};

/// Action delivery.  Unset hooks mean the action is skipped (but the event
/// is still logged — the schedule is the contract, delivery is pluggable).
struct ChaosHooks {
  std::function<void(const ReplicaTarget&)> kill;
  std::function<void(const ReplicaTarget&, std::uint64_t pause_us)> brownout;
  std::function<void(const ReplicaTarget&)> corrupt_snapshot;
};

class ReplicaChaos {
 public:
  /// Throws std::invalid_argument on an empty target list.
  ReplicaChaos(fault::FaultPlan plan, std::vector<ReplicaTarget> targets,
               ChaosHooks hooks, util::Clock& clock,
               metrics::Registry& registry = metrics::global_registry());

  /// Starts (or restarts) the plan clock.  Ticks before arm() are no-ops.
  void arm();

  /// Evaluates the phase in force and rolls each target's dice for this
  /// tick; fires hooks for the actions drawn.  Returns how many actions
  /// fired.  A killed target is dropped from subsequent ticks until
  /// `revive()` (the orchestrator revives after replacing the process).
  std::size_t tick();

  /// Re-enters `replica_id` into the drill (after a replacement process
  /// took over its slot).
  void revive(std::uint64_t replica_id);

  [[nodiscard]] const std::vector<ChaosEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const fault::FaultPlan& plan() const noexcept { return plan_; }

 private:
  fault::FaultPlan plan_;
  std::vector<ReplicaTarget> targets_;
  std::vector<bool> alive_;
  ChaosHooks hooks_;
  util::Clock* clock_;
  util::Prf prf_;
  bool armed_ = false;
  std::uint64_t armed_at_us_ = 0;
  std::uint64_t tick_index_ = 0;
  std::vector<ChaosEvent> events_;

  metrics::Counter* kills_counter_;
  metrics::Counter* brownouts_counter_;
  metrics::Counter* corruptions_counter_;
};

}  // namespace lcaknap::fleet

#endif  // LCAKNAP_FLEET_CHAOS_H
