#ifndef LCAKNAP_FLEET_CHECKER_H
#define LCAKNAP_FLEET_CHECKER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "net/client.h"
#include "net/wire.h"

/// \file checker.h
/// Cross-replica consistency checking: Lemma 4.9 asserted over the fleet.
///
/// Every replica built from the same shared seed must answer every
/// `(tenant, item)` query with the *identical* membership bit — that is the
/// lemma's "consistent with one maximal point p'" guarantee, and the whole
/// basis for coordination-free failover.  `ConsistencyChecker` turns it
/// into a falsifiable runtime check: query all endpoints for the same
/// `(tenant, item)`, collect the served answers, and flag any pair of
/// `kOk` answers that disagree as a **divergence**.
///
/// What is and is not a divergence:
///   * two `kOk` answers with different `answer` bytes — divergence (the
///     lemma is violated; something in the seed/state plumbing is broken);
///   * an unreachable replica (`ConnectionLost`) — *unavailability*, counted
///     separately; chaos drills expect plenty of it and none of it is an
///     inconsistency;
///   * a typed non-answer (`kOverloaded`, `kDeadlineExceeded`, ...) — a
///     refusal, not an answer; counted as `non_ok`, never compared;
///   * `kDegraded` answers are compared among themselves but not against
///     `kOk` (the degrade ladder is an explicitly-flagged different
///     computation; mixing the two classes would manufacture false alarms).
///
/// `cache_hit` and `replica_id` legitimately differ across replicas and are
/// excluded from comparison; the `answer` byte is the payload the lemma
/// speaks about.  Metrics: `fleet_checks_total`, `fleet_divergences_total`
/// (must stay 0), `fleet_check_unavailable_total`.

namespace lcaknap::fleet {

struct CheckerEndpoint {
  std::uint64_t replica_id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// One replica's view of one probed (tenant, item).
struct CheckObservation {
  std::uint64_t replica_id = 0;
  bool reachable = false;
  net::WireStatus status = net::WireStatus::kError;
  bool answer = false;
};

struct Divergence {
  std::string tenant;
  std::uint64_t item = 0;
  std::vector<CheckObservation> observations;  ///< the conflicting views
};

struct CheckerReport {
  std::uint64_t checks = 0;        ///< (tenant, item) probes completed
  std::uint64_t comparisons = 0;   ///< answer pairs compared
  std::uint64_t divergences = 0;   ///< pairs that disagreed (must be 0)
  std::uint64_t unavailable = 0;   ///< endpoint unreachable during a probe
  std::uint64_t non_ok = 0;        ///< typed refusals (never compared)
  std::vector<Divergence> details; ///< one entry per divergent probe

  [[nodiscard]] bool consistent() const noexcept { return divergences == 0; }
};

class ConsistencyChecker {
 public:
  /// Throws std::invalid_argument on fewer than two endpoints (there is
  /// nothing to cross-check).  Connections are opened lazily and re-opened
  /// after a `ConnectionLost` (replicas die and come back mid-drill).
  explicit ConsistencyChecker(
      std::vector<CheckerEndpoint> endpoints,
      metrics::Registry& registry = metrics::global_registry());

  ConsistencyChecker(const ConsistencyChecker&) = delete;
  ConsistencyChecker& operator=(const ConsistencyChecker&) = delete;

  /// Probes every endpoint for (tenant, item) and folds the observations
  /// into the report.  Returns true when no divergence was recorded by
  /// *this* probe.
  bool check(const std::string& tenant, std::uint64_t item);

  [[nodiscard]] const CheckerReport& report() const noexcept { return report_; }

 private:
  struct Endpoint {
    CheckerEndpoint config;
    std::unique_ptr<net::Client> client;
  };

  std::vector<Endpoint> endpoints_;
  std::uint64_t next_request_id_ = 1;
  CheckerReport report_;

  metrics::Counter* checks_counter_;
  metrics::Counter* divergences_counter_;
  metrics::Counter* unavailable_counter_;
};

}  // namespace lcaknap::fleet

#endif  // LCAKNAP_FLEET_CHECKER_H
