#ifndef LCAKNAP_FAULT_PLAN_H
#define LCAKNAP_FAULT_PLAN_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

/// \file plan.h
/// Scripted fault plans.  A `FaultPlan` is a deterministic, seed-driven
/// script of phases — steady, burst outage, brownout latency ramp,
/// corruption window — that `ChaosAccess` (chaos.h) executes against a
/// wrapped oracle.  Each phase fixes three knobs for its duration:
///
///  * `fail_rate`     — fraction of calls that throw `OracleUnavailable`
///                      before touching the inner oracle (fail-stop);
///  * `latency range` — per-call injected latency, drawn uniformly in
///                      [latency_min_us, latency_max_us] and slept on the
///                      injected `util::Clock` (brownout);
///  * `corrupt_rate`  — fraction of answers returned wrong-but-well-formed
///                      (the corrupted-answer fault class of knapsack under
///                      explorable uncertainty, arXiv:2507.02657).
///
/// Phase position is a function of *elapsed clock time* since the plan was
/// armed, so the same plan means the same thing to a naive client and a
/// backing-off one (a call-count schedule would make the outage shorter for
/// whoever retries hardest).  Per-call decisions are a pure function of
/// (plan seed, call index) via `util::Prf`, so a replay over a
/// `VirtualClock` reproduces the identical fault sequence — the property
/// tests/fault/test_resilience_stack.cpp pins.

namespace lcaknap::fault {

/// One phase of a fault script.  All rates in [0, 1]; a phase with all-zero
/// knobs is a steady (fault-free) window.
struct FaultPhase {
  std::string label = "steady";
  /// Phase length in clock microseconds; 0 on the *last* phase means "hold
  /// forever" (0 elsewhere is rejected by validate()).
  std::uint64_t duration_us = 0;
  double fail_rate = 0.0;
  double corrupt_rate = 0.0;
  std::uint64_t latency_min_us = 0;
  std::uint64_t latency_max_us = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  /// Validates eagerly: throws std::invalid_argument on empty phase lists,
  /// rates outside [0, 1] (NaN included), inverted latency ranges, zero
  /// durations before the last phase, or an all-zero-duration cycling plan.
  FaultPlan(std::vector<FaultPhase> phases, std::uint64_t seed, bool cycle = false);

  /// Phase index active after `elapsed_us` of armed time.  Past the scripted
  /// end, a cycling plan wraps modulo its total duration; a non-cycling plan
  /// holds its last phase.
  [[nodiscard]] std::size_t phase_index_at(std::uint64_t elapsed_us) const noexcept;
  [[nodiscard]] const FaultPhase& phase_at(std::uint64_t elapsed_us) const noexcept {
    return phases_[phase_index_at(elapsed_us)];
  }

  [[nodiscard]] const std::vector<FaultPhase>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] bool cycles() const noexcept { return cycle_; }
  /// Sum of scripted durations (the final hold-forever phase contributes 0).
  [[nodiscard]] std::uint64_t total_duration_us() const noexcept { return total_us_; }

  /// One line per phase, for CLI echo and bench headers.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<FaultPhase> phases_;
  std::uint64_t seed_ = 0;
  bool cycle_ = false;
  std::uint64_t total_us_ = 0;
};

/// Typed parse failure: carries the 1-based line/column where the offending
/// token starts and the token itself, so a mistyped plan in a CLI flag or a
/// chaos-drill script points at the exact spot instead of a bare reason.
/// Derives from std::invalid_argument, so callers that only care that the
/// spec was malformed keep working.
class FaultPlanParseError : public std::invalid_argument {
 public:
  FaultPlanParseError(std::string reason, std::size_t line, std::size_t column,
                      std::string token)
      : std::invalid_argument("fault plan:" + std::to_string(line) + ":" +
                              std::to_string(column) + ": " + reason + ": '" +
                              token + "'"),
        line_(line),
        column_(column),
        token_(std::move(token)) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }
  [[nodiscard]] const std::string& token() const noexcept { return token_; }

 private:
  std::size_t line_;
  std::size_t column_;
  std::string token_;
};

/// Parses the CLI plan grammar:
///
///   plan   := phase ((';' | '\n') phase)*
///   phase  := label ':' duration_ms [':' knob (',' knob)*]
///   knob   := 'fail=' RATE | 'corrupt=' RATE
///           | 'lat=' US | 'lat=' US '..' US
///
/// Durations are milliseconds (human scale); latencies are microseconds
/// (injection scale).  A trailing phase with duration 0 holds forever.
/// Example: "steady:200;outage:100:fail=1;brownout:150:fail=0.2,lat=100..400".
/// Multi-line scripts separate phases by newline; both separators nest the
/// same way.  Throws `FaultPlanParseError` (an std::invalid_argument with
/// line/column and the offending token) on malformed specs; semantic
/// violations (inverted ranges, zero mid-plan durations) throw plain
/// std::invalid_argument from the FaultPlan constructor.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec,
                                         std::uint64_t seed, bool cycle = false);

}  // namespace lcaknap::fault

#endif  // LCAKNAP_FAULT_PLAN_H
