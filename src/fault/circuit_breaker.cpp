#include "fault/circuit_breaker.h"

#include <stdexcept>

namespace lcaknap::fault {

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config,
                               util::Clock& clock, metrics::Registry& registry)
    : config_(config),
      clock_(&clock),
      window_(config.window, false),
      state_gauge_(&registry.gauge(
          "breaker_state", "Circuit breaker state (0 closed, 1 open, 2 half-open)")),
      to_open_total_(&registry.counter("breaker_transitions_total",
                                       "Circuit breaker state transitions",
                                       {{"to", "open"}})),
      to_half_open_total_(&registry.counter("breaker_transitions_total",
                                            "Circuit breaker state transitions",
                                            {{"to", "half_open"}})),
      to_closed_total_(&registry.counter("breaker_transitions_total",
                                         "Circuit breaker state transitions",
                                         {{"to", "closed"}})),
      rejected_total_(&registry.counter(
          "breaker_rejected_total", "Calls fast-failed by an open circuit breaker")) {
  if (config.window == 0) {
    throw std::invalid_argument("CircuitBreaker: window must be positive");
  }
  if (!(config.failure_rate_threshold >= 0.0 && config.failure_rate_threshold <= 1.0)) {
    throw std::invalid_argument(
        "CircuitBreaker: failure_rate_threshold must be in [0, 1]");
  }
  if (config.half_open_probes == 0) {
    throw std::invalid_argument("CircuitBreaker: half_open_probes must be positive");
  }
  state_gauge_->set(0.0);
}

void CircuitBreaker::reset_window_locked() {
  window_.assign(config_.window, false);
  window_next_ = 0;
  window_filled_ = 0;
  window_failures_ = 0;
  consecutive_ = 0;
}

void CircuitBreaker::transition_locked(BreakerState next) {
  state_ = next;
  state_gauge_->set(static_cast<double>(next));
  switch (next) {
    case BreakerState::kOpen:
      ++counters_.to_open;
      to_open_total_->inc();
      opened_at_us_ = clock_->now_us();
      break;
    case BreakerState::kHalfOpen:
      ++counters_.to_half_open;
      to_half_open_total_->inc();
      probes_granted_ = 0;
      probes_succeeded_ = 0;
      break;
    case BreakerState::kClosed:
      ++counters_.to_closed;
      to_closed_total_->inc();
      reset_window_locked();
      break;
  }
}

bool CircuitBreaker::allow() {
  const std::lock_guard lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (clock_->now_us() - opened_at_us_ >= config_.open_cooldown_us) {
        transition_locked(BreakerState::kHalfOpen);
        ++probes_granted_;
        return true;
      }
      ++counters_.rejected;
      rejected_total_->inc();
      return false;
    case BreakerState::kHalfOpen:
      if (probes_granted_ < config_.half_open_probes) {
        ++probes_granted_;
        return true;
      }
      ++counters_.rejected;
      rejected_total_->inc();
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success() {
  const std::lock_guard lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed: {
      consecutive_ = 0;
      window_failures_ -= window_[window_next_] ? 1 : 0;
      window_[window_next_] = false;
      window_next_ = (window_next_ + 1) % config_.window;
      if (window_filled_ < config_.window) ++window_filled_;
      break;
    }
    case BreakerState::kHalfOpen:
      if (++probes_succeeded_ >= config_.half_open_probes) {
        transition_locked(BreakerState::kClosed);
      }
      break;
    case BreakerState::kOpen:
      // A straggler that was admitted before the trip; nothing to decide.
      break;
  }
}

void CircuitBreaker::record_failure() {
  const std::lock_guard lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed: {
      ++consecutive_;
      window_failures_ += window_[window_next_] ? 0 : 1;
      window_[window_next_] = true;
      window_next_ = (window_next_ + 1) % config_.window;
      if (window_filled_ < config_.window) ++window_filled_;
      const bool consec_trip = config_.consecutive_failures > 0 &&
                               consecutive_ >= config_.consecutive_failures;
      const bool rate_trip =
          window_filled_ >= config_.window &&
          static_cast<double>(window_failures_) >=
              config_.failure_rate_threshold * static_cast<double>(config_.window);
      if (consec_trip || rate_trip) transition_locked(BreakerState::kOpen);
      break;
    }
    case BreakerState::kHalfOpen:
      transition_locked(BreakerState::kOpen);  // the probe failed: back off
      break;
    case BreakerState::kOpen:
      break;  // straggler failure while already open
  }
}

BreakerState CircuitBreaker::state() const {
  const std::lock_guard lock(mutex_);
  return state_;
}

BreakerCounters CircuitBreaker::counters() const {
  const std::lock_guard lock(mutex_);
  return counters_;
}

BreakerAccess::BreakerAccess(const oracle::InstanceAccess& inner,
                             const CircuitBreakerConfig& config, util::Clock& clock,
                             metrics::Registry& registry)
    : inner_(&inner), breaker_(config, clock, registry) {}

knapsack::Item BreakerAccess::do_query(std::size_t i) const {
  if (!breaker_.allow()) throw CircuitOpen();
  try {
    auto item = inner_->query(i);
    breaker_.record_success();
    return item;
  } catch (const oracle::OracleUnavailable&) {
    breaker_.record_failure();
    throw;
  }
}

oracle::WeightedDraw BreakerAccess::do_sample(util::Xoshiro256& rng) const {
  if (!breaker_.allow()) throw CircuitOpen();
  try {
    auto draw = inner_->weighted_sample(rng);
    breaker_.record_success();
    return draw;
  } catch (const oracle::OracleUnavailable&) {
    breaker_.record_failure();
    throw;
  }
}

}  // namespace lcaknap::fault
