#ifndef LCAKNAP_FAULT_CIRCUIT_BREAKER_H
#define LCAKNAP_FAULT_CIRCUIT_BREAKER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "metrics/metrics.h"
#include "oracle/access.h"
#include "util/virtual_clock.h"

/// \file circuit_breaker.h
/// Circuit breaker for the oracle client stack.
///
/// A retry layer makes one call reliable; a breaker protects the *fleet*:
/// when the oracle is down hard, retrying every request multiplies load on
/// a service that is already failing and burns client time discovering the
/// same outage over and over.  The breaker observes call outcomes and trips
/// to fast-fail mode, converting per-request retry storms into immediate
/// `CircuitOpen` rejections the serving engine can degrade on.
///
/// State machine (classic three-state):
///
///   closed ──(failure-rate over window, or N consecutive failures)──> open
///   open ──(cooldown elapsed on the injected clock)──> half-open
///   half-open ──(probe quota succeeds)──> closed
///   half-open ──(any probe fails)──> open   (cooldown restarts)
///
/// In `open`, `allow()` rejects without touching the inner oracle.  In
/// `half-open`, up to `half_open_probes` calls are let through; their
/// outcomes decide the next state.  All timing reads the injected
/// `util::Clock`, so tests drive cooldowns deterministically through a
/// `VirtualClock` with no real sleeps.
///
/// `CircuitBreaker` is the state machine (mutex-guarded — transitions are
/// rare and cheap relative to oracle calls); `BreakerAccess` is the
/// `InstanceAccess` decorator that consults it around every call.  Placed
/// *outermost* in the stack (above retries), so an open breaker skips the
/// whole retry cycle — that is where the wasted-call savings come from.
///
/// Metrics: `breaker_state` (0 closed / 1 open / 2 half-open),
/// `breaker_transitions_total{to}`, `breaker_rejected_total`.

namespace lcaknap::fault {

/// Thrown by `BreakerAccess` when the breaker is open.  Derives from
/// OracleUnavailable: callers treat it as the oracle being unavailable —
/// which is exactly what the breaker is asserting — so the engine's
/// degradation path handles both identically.
class CircuitOpen : public oracle::OracleUnavailable {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "circuit breaker open";
  }
};

enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

[[nodiscard]] constexpr const char* breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

struct CircuitBreakerConfig {
  /// Rolling outcome window; the failure-rate trip needs a full window.
  std::size_t window = 32;
  /// Trip when the window is full and its failure fraction reaches this.
  double failure_rate_threshold = 0.5;
  /// Trip immediately after this many consecutive failures (0 disables).
  std::size_t consecutive_failures = 8;
  /// Time in `open` before probing again (on the injected clock).
  std::uint64_t open_cooldown_us = 100'000;
  /// Probes admitted in half-open; all must succeed to close.
  std::size_t half_open_probes = 3;
};

/// Counters for conservation checks: every trip is matched by a recovery or
/// a re-trip, and states only change through these transitions.
struct BreakerCounters {
  std::uint64_t to_open = 0;       ///< closed→open and half-open→open trips
  std::uint64_t to_half_open = 0;  ///< open→half-open cooldown expiries
  std::uint64_t to_closed = 0;     ///< half-open→closed recoveries
  std::uint64_t rejected = 0;      ///< calls fast-failed while open
};

class CircuitBreaker {
 public:
  /// Validates the config (throws std::invalid_argument on window == 0,
  /// rates outside [0, 1] (NaN included), or half_open_probes == 0).
  /// `clock` must outlive this object.
  explicit CircuitBreaker(const CircuitBreakerConfig& config,
                          util::Clock& clock = util::system_clock(),
                          metrics::Registry& registry = metrics::global_registry());

  /// Gate for one call: true = proceed (and report the outcome back via
  /// record_success/record_failure), false = rejected, fail fast.  An open
  /// breaker whose cooldown has elapsed transitions to half-open here.
  [[nodiscard]] bool allow();
  void record_success();
  void record_failure();

  [[nodiscard]] BreakerState state() const;
  [[nodiscard]] BreakerCounters counters() const;
  [[nodiscard]] const CircuitBreakerConfig& config() const noexcept { return config_; }

 private:
  void transition_locked(BreakerState next);  // requires mutex_ held
  void reset_window_locked();

  CircuitBreakerConfig config_;
  util::Clock* clock_;

  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<bool> window_;  // ring of recent outcomes, true = failure
  std::size_t window_next_ = 0;
  std::size_t window_filled_ = 0;
  std::size_t window_failures_ = 0;
  std::size_t consecutive_ = 0;
  std::uint64_t opened_at_us_ = 0;
  std::size_t probes_granted_ = 0;
  std::size_t probes_succeeded_ = 0;
  BreakerCounters counters_;

  metrics::Gauge* state_gauge_;
  metrics::Counter* to_open_total_;
  metrics::Counter* to_half_open_total_;
  metrics::Counter* to_closed_total_;
  metrics::Counter* rejected_total_;
};

/// Decorator gating every oracle call through a `CircuitBreaker` it owns.
class BreakerAccess final : public oracle::InstanceAccess {
 public:
  /// `inner` and `clock` must outlive this object.
  BreakerAccess(const oracle::InstanceAccess& inner,
                const CircuitBreakerConfig& config,
                util::Clock& clock = util::system_clock(),
                metrics::Registry& registry = metrics::global_registry());

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  [[nodiscard]] CircuitBreaker& breaker() noexcept { return breaker_; }
  [[nodiscard]] const CircuitBreaker& breaker() const noexcept { return breaker_; }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] oracle::WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  const oracle::InstanceAccess* inner_;
  mutable CircuitBreaker breaker_;
};

}  // namespace lcaknap::fault

#endif  // LCAKNAP_FAULT_CIRCUIT_BREAKER_H
