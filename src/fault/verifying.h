#ifndef LCAKNAP_FAULT_VERIFYING_H
#define LCAKNAP_FAULT_VERIFYING_H

#include <atomic>
#include <cstdint>

#include "metrics/metrics.h"
#include "oracle/access.h"

/// \file verifying.h
/// `VerifyingAccess`: guards the client against corrupted oracle answers.
///
/// Definition 2.3's consistency guarantee assumes every probe returns the
/// true item; a corrupted answer (chaos.h's third fault class) would flow
/// silently into the membership rule and could make replicas disagree.
/// This decorator checks every answer against the instance invariants that
/// are free to evaluate (metadata is uncounted access):
///
///   * sampled index within bounds (`index < size()`);
///   * profit in [0, total_profit]  — profits are non-negative and no item
///     exceeds the instance total;
///   * weight in [0, total_weight]  — likewise for weights;
///   * weight <= capacity           — Instance construction excludes items
///     heavier than K (Definition 2.2 convention).
///
/// A violating answer is converted into a `CorruptedAnswer` (a subclass of
/// `OracleUnavailable`, hence *retryable*): the retry layer re-probes and the
/// wrong answer never reaches the algorithm — Definition 2.3 consistency as
/// a guarded runtime property rather than a trusted assumption.  Corruption
/// that satisfies every invariant is undetectable here by construction; the
/// answer-cache paranoia audit (re-deriving answers end-to-end) is the
/// backstop for that class.
///
/// Detections are counted locally (`corruptions_detected()`) and in the
/// registry (`oracle_corruptions_detected_total`).  Stateless apart from
/// atomic counters — safe for concurrent callers.

namespace lcaknap::fault {

/// Thrown when an oracle answer fails invariant verification.  Derives from
/// OracleUnavailable so every existing retry/degradation path treats it as a
/// transient, retryable failure.
class CorruptedAnswer : public oracle::OracleUnavailable {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "oracle answer failed invariant verification";
  }
};

class VerifyingAccess final : public oracle::InstanceAccess {
 public:
  /// `inner` must outlive this object.
  explicit VerifyingAccess(const oracle::InstanceAccess& inner,
                           metrics::Registry& registry = metrics::global_registry());

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  [[nodiscard]] std::uint64_t corruptions_detected() const noexcept {
    return detected_.load(std::memory_order_relaxed);
  }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] oracle::WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  void verify_item(const knapsack::Item& item) const;
  [[noreturn]] void reject() const;

  const oracle::InstanceAccess* inner_;
  mutable std::atomic<std::uint64_t> detected_{0};
  metrics::Counter* detected_total_;
};

}  // namespace lcaknap::fault

#endif  // LCAKNAP_FAULT_VERIFYING_H
