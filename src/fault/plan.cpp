#include "fault/plan.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lcaknap::fault {

namespace {

bool valid_rate(double r) { return r >= 0.0 && r <= 1.0; }  // NaN fails both

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultPhase> phases, std::uint64_t seed, bool cycle)
    : phases_(std::move(phases)), seed_(seed), cycle_(cycle) {
  if (phases_.empty()) {
    throw std::invalid_argument("FaultPlan: at least one phase required");
  }
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const auto& phase = phases_[i];
    if (!valid_rate(phase.fail_rate) || !valid_rate(phase.corrupt_rate)) {
      throw std::invalid_argument("FaultPlan: phase '" + phase.label +
                                  "' has a rate outside [0, 1]");
    }
    if (phase.latency_min_us > phase.latency_max_us) {
      throw std::invalid_argument("FaultPlan: phase '" + phase.label +
                                  "' has latency_min_us > latency_max_us");
    }
    if (phase.duration_us == 0 && i + 1 < phases_.size()) {
      throw std::invalid_argument(
          "FaultPlan: zero duration is only allowed on the last phase");
    }
    total_us_ += phase.duration_us;
  }
  if (cycle_ && total_us_ == 0) {
    throw std::invalid_argument("FaultPlan: a cycling plan needs positive duration");
  }
}

std::size_t FaultPlan::phase_index_at(std::uint64_t elapsed_us) const noexcept {
  if (cycle_) elapsed_us %= total_us_;
  std::uint64_t edge = 0;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    edge += phases_[i].duration_us;
    if (elapsed_us < edge) return i;
  }
  return phases_.size() - 1;  // past the script: hold the last phase
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const auto& phase = phases_[i];
    if (i > 0) os << "; ";
    os << phase.label << " ";
    if (phase.duration_us == 0) {
      os << "(hold)";
    } else {
      os << phase.duration_us / 1000 << "ms";
    }
    if (phase.fail_rate > 0) os << " fail=" << phase.fail_rate;
    if (phase.corrupt_rate > 0) os << " corrupt=" << phase.corrupt_rate;
    if (phase.latency_max_us > 0) {
      os << " lat=" << phase.latency_min_us << ".." << phase.latency_max_us << "us";
    }
  }
  if (cycle_) os << " (cycling)";
  return os.str();
}

namespace {

/// Translates an absolute byte offset in the spec into the 1-based
/// line/column a FaultPlanParseError reports; multi-line scripts (phases
/// separated by '\n') make the line component meaningful.
[[noreturn]] void fail_at(const std::string& spec, std::size_t at,
                          const std::string& reason, std::string token) {
  std::size_t line = 1;
  std::size_t column = 1;
  for (std::size_t i = 0; i < at && i < spec.size(); ++i) {
    if (spec[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  throw FaultPlanParseError(reason, line, column, std::move(token));
}

std::uint64_t parse_u64(const std::string& spec, std::size_t at,
                        const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const auto value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    fail_at(spec, at, "bad " + what, text);
  }
}

double parse_rate(const std::string& spec, std::size_t at,
                  const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size() || !(value >= 0.0 && value <= 1.0)) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    fail_at(spec, at, "bad " + what, text);
  }
}

/// Parses one phase token; `base` is the token's absolute offset in the
/// spec, so every error points at the offending token, not just the phase.
FaultPhase parse_phase(const std::string& spec, std::size_t base,
                       const std::string& text) {
  // label ':' duration_ms [':' knob (',' knob)*]
  const auto first = text.find(':');
  if (first == std::string::npos || first == 0) {
    fail_at(spec, base, "phase needs 'label:duration_ms'", text);
  }
  FaultPhase phase;
  phase.label = text.substr(0, first);
  const auto second = text.find(':', first + 1);
  const auto duration_text = text.substr(
      first + 1, second == std::string::npos ? std::string::npos : second - first - 1);
  phase.duration_us =
      parse_u64(spec, base + first + 1, duration_text, "duration") * 1000;
  if (second == std::string::npos) return phase;

  std::size_t pos = second + 1;
  while (true) {
    const auto comma = text.find(',', pos);
    const bool last = comma == std::string::npos;
    const std::string knob =
        text.substr(pos, last ? std::string::npos : comma - pos);
    if (last && knob.empty()) break;  // a trailing ',' yields no knob
    const std::size_t knob_at = base + pos;
    const auto eq = knob.find('=');
    if (eq == std::string::npos) {
      fail_at(spec, knob_at, "knob needs 'key=value'", knob);
    }
    const auto key = knob.substr(0, eq);
    const auto value = knob.substr(eq + 1);
    const std::size_t value_at = knob_at + eq + 1;
    if (key == "fail") {
      phase.fail_rate = parse_rate(spec, value_at, value, "fail rate");
    } else if (key == "corrupt") {
      phase.corrupt_rate = parse_rate(spec, value_at, value, "corrupt rate");
    } else if (key == "lat") {
      const auto dots = value.find("..");
      if (dots == std::string::npos) {
        phase.latency_min_us = phase.latency_max_us =
            parse_u64(spec, value_at, value, "latency");
      } else {
        phase.latency_min_us =
            parse_u64(spec, value_at, value.substr(0, dots), "latency min");
        phase.latency_max_us = parse_u64(spec, value_at + dots + 2,
                                         value.substr(dots + 2), "latency max");
      }
    } else {
      fail_at(spec, knob_at, "unknown knob (try fail, corrupt, lat)", key);
    }
    if (last) break;
    pos = comma + 1;
  }
  return phase;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec, std::uint64_t seed, bool cycle) {
  std::vector<FaultPhase> phases;
  std::size_t start = 0;
  while (start <= spec.size()) {
    auto end = spec.find_first_of(";\n", start);
    if (end == std::string::npos) end = spec.size();
    if (end > start) {
      phases.push_back(parse_phase(spec, start, spec.substr(start, end - start)));
    }
    if (end == spec.size()) break;
    start = end + 1;
  }
  return FaultPlan(std::move(phases), seed, cycle);  // validates
}

}  // namespace lcaknap::fault
