#include "fault/chaos.h"

namespace lcaknap::fault {

namespace {

// Prf streams: every decision class reads a disjoint part of the plan tape.
constexpr std::uint64_t kFailStream = 1;
constexpr std::uint64_t kLatencyStream = 2;
constexpr std::uint64_t kCorruptStream = 3;
constexpr std::uint64_t kCorruptKindStream = 4;

}  // namespace

ChaosAccess::ChaosAccess(const oracle::InstanceAccess& inner, FaultPlan plan,
                         util::Clock& clock, bool armed, metrics::Registry& registry)
    : inner_(&inner),
      plan_(std::move(plan)),
      prf_(util::mix64(plan_.seed())),
      clock_(&clock),
      armed_(armed),
      armed_at_us_(clock.now_us()),
      failstops_total_(&registry.counter("fault_injected_total",
                                         "Faults injected by the chaos layer",
                                         {{"kind", "failstop"}})),
      latencies_total_(&registry.counter("fault_injected_total",
                                         "Faults injected by the chaos layer",
                                         {{"kind", "latency"}})),
      corruptions_total_(&registry.counter("fault_injected_total",
                                           "Faults injected by the chaos layer",
                                           {{"kind", "corruption"}})),
      phase_gauge_(&registry.gauge(
          "fault_plan_phase", "Index of the fault plan phase currently active")) {}

void ChaosAccess::arm() noexcept {
  armed_at_us_.store(clock_->now_us(), std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

std::size_t ChaosAccess::phase_index() const noexcept {
  if (!armed()) return kInactive;
  const auto elapsed =
      clock_->now_us() - armed_at_us_.load(std::memory_order_relaxed);
  return plan_.phase_index_at(elapsed);
}

const FaultPhase& ChaosAccess::pre_call(std::uint64_t n) const {
  const auto elapsed =
      clock_->now_us() - armed_at_us_.load(std::memory_order_relaxed);
  const auto index = plan_.phase_index_at(elapsed);
  const FaultPhase& phase = plan_.phases()[index];
  phase_gauge_->set(static_cast<double>(index));
  if (phase.latency_max_us > 0) {
    const auto span = phase.latency_max_us - phase.latency_min_us + 1;
    const auto latency =
        phase.latency_min_us +
        static_cast<std::uint64_t>(prf_.uniform(kLatencyStream, n) *
                                   static_cast<double>(span));
    latencies_.fetch_add(1, std::memory_order_relaxed);
    latencies_total_->inc();
    clock_->sleep_us(latency);
  }
  if (prf_.uniform(kFailStream, n) < phase.fail_rate) {
    failstops_.fetch_add(1, std::memory_order_relaxed);
    failstops_total_->inc();
    throw oracle::OracleUnavailable();
  }
  return phase;
}

bool ChaosAccess::corrupt_due(const FaultPhase& phase, std::uint64_t n) const {
  if (prf_.uniform(kCorruptStream, n) >= phase.corrupt_rate) return false;
  corruptions_.fetch_add(1, std::memory_order_relaxed);
  corruptions_total_->inc();
  return true;
}

knapsack::Item ChaosAccess::corrupt_item(knapsack::Item item, std::uint64_t n) const {
  // Wrong but well-formed: a plausible Item whose fields break one metadata
  // invariant, so VerifyingAccess can prove it corrupt without re-reading.
  const auto word = prf_.word(kCorruptKindStream, n);
  const auto jitter = static_cast<std::int64_t>(word >> 32 & 0x3FF);
  switch (word % 3) {
    case 0: item.profit = total_profit() + 1 + jitter; break;
    case 1: item.weight = -1 - jitter; break;
    default: item.weight = total_weight() + 1 + jitter; break;
  }
  return item;
}

knapsack::Item ChaosAccess::do_query(std::size_t i) const {
  if (!armed()) return inner_->query(i);
  const auto n = calls_.fetch_add(1, std::memory_order_relaxed);
  const FaultPhase& phase = pre_call(n);
  auto item = inner_->query(i);
  if (corrupt_due(phase, n)) item = corrupt_item(item, n);
  return item;
}

oracle::WeightedDraw ChaosAccess::do_sample(util::Xoshiro256& rng) const {
  if (!armed()) return inner_->weighted_sample(rng);
  const auto n = calls_.fetch_add(1, std::memory_order_relaxed);
  // Faults fire before the caller's tape is consumed, so a retried call
  // re-draws with fresh randomness and a fail-stop never skips tape words —
  // the invariant behind "retries are transparent to LCA answers".
  const FaultPhase& phase = pre_call(n);
  auto draw = inner_->weighted_sample(rng);
  if (corrupt_due(phase, n)) {
    // Samples corrupt in one extra way: an out-of-range index.
    const auto word = prf_.word(kCorruptKindStream, n);
    if (word % 4 == 3) {
      draw.index = size() + static_cast<std::size_t>(word >> 32 & 0xF);
    } else {
      draw.item = corrupt_item(draw.item, n);
    }
  }
  return draw;
}

}  // namespace lcaknap::fault
