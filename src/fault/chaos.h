#ifndef LCAKNAP_FAULT_CHAOS_H
#define LCAKNAP_FAULT_CHAOS_H

#include <atomic>
#include <cstdint>

#include "fault/plan.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

/// \file chaos.h
/// `ChaosAccess`: an `InstanceAccess` decorator that executes a `FaultPlan`
/// against the wrapped oracle.  This supersedes ad-hoc `FlakyAccess` usage
/// for scenario testing — `FlakyAccess` remains as the single-phase,
/// fail-stop-only special case (a one-phase plan with only `fail_rate` set
/// behaves identically up to RNG choice).
///
/// Per call: (1) look up the active phase from elapsed clock time since
/// arming, (2) draw latency / fail-stop / corruption decisions as pure
/// functions of (plan seed, call index) via `util::Prf`, (3) sleep any
/// injected latency on the injected clock, (4) throw `OracleUnavailable`
/// for a fail-stop, else forward to the inner oracle, (5) corrupt the
/// answer if the corruption draw fired.
///
/// Corrupted answers are *wrong but well-formed*: a plausible `Item` (or
/// sample index) whose field values violate one of the instance's metadata
/// invariants — profit above the total, negative weight, weight above the
/// total, or (samples only) an out-of-range index.  `VerifyingAccess`
/// (verifying.h) detects exactly these classes and converts them into
/// retryable failures; a hypothetical corruption respecting every invariant
/// is undetectable by construction and is the cache paranoia audit's
/// department, not this layer's.
///
/// Arming: the engine's one-time warm-up (Theorem 4.1) runs at construction
/// of `ServeEngine`, so benches and the CLI build the chaos layer disarmed,
/// let the warm-up pass cleanly, then `arm()` before replaying traffic.
/// Arming (re)starts the plan's phase schedule at the current clock time.
///
/// Metrics: `fault_injected_total{kind="failstop"|"latency"|"corruption"}`
/// and the `fault_plan_phase` gauge (last observed phase index).
///
/// Thread safety: decisions are pure functions of the atomic call counter,
/// the clock is thread-safe by contract, and counters are atomics — safe
/// for concurrent callers, with the usual caveat that the per-thread
/// interleaving of call indices is scheduler-dependent; single-threaded
/// replays are bit-deterministic.

namespace lcaknap::fault {

class ChaosAccess final : public oracle::InstanceAccess {
 public:
  /// `inner` and `clock` must outlive this object.
  ChaosAccess(const oracle::InstanceAccess& inner, FaultPlan plan,
              util::Clock& clock = util::system_clock(), bool armed = true,
              metrics::Registry& registry = metrics::global_registry());

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  /// Starts (or restarts) the fault script at the clock's current time.
  void arm() noexcept;
  /// Pass-through mode: no faults, no counting of plan time.
  void disarm() noexcept { armed_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// Phase active at the clock's current time (kInactive when disarmed).
  [[nodiscard]] std::size_t phase_index() const noexcept;
  static constexpr std::size_t kInactive = static_cast<std::size_t>(-1);

  // Injection accounting (mirrored into `fault_injected_total{kind}`).
  [[nodiscard]] std::uint64_t failstops_injected() const noexcept {
    return failstops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t latencies_injected() const noexcept {
    return latencies_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t corruptions_injected() const noexcept {
    return corruptions_.load(std::memory_order_relaxed);
  }
  /// Calls that reached this decorator while armed (faulted or not).
  [[nodiscard]] std::uint64_t calls_seen() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] oracle::WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  /// Applies latency + fail-stop for call `n`; returns the active phase.
  const FaultPhase& pre_call(std::uint64_t n) const;
  [[nodiscard]] bool corrupt_due(const FaultPhase& phase, std::uint64_t n) const;
  [[nodiscard]] knapsack::Item corrupt_item(knapsack::Item item,
                                            std::uint64_t n) const;

  const oracle::InstanceAccess* inner_;
  FaultPlan plan_;
  util::Prf prf_;
  util::Clock* clock_;
  std::atomic<bool> armed_;
  std::atomic<std::uint64_t> armed_at_us_{0};
  mutable std::atomic<std::uint64_t> calls_{0};
  mutable std::atomic<std::uint64_t> failstops_{0};
  mutable std::atomic<std::uint64_t> latencies_{0};
  mutable std::atomic<std::uint64_t> corruptions_{0};
  metrics::Counter* failstops_total_;
  metrics::Counter* latencies_total_;
  metrics::Counter* corruptions_total_;
  metrics::Gauge* phase_gauge_;
};

}  // namespace lcaknap::fault

#endif  // LCAKNAP_FAULT_CHAOS_H
