#include "fault/verifying.h"

namespace lcaknap::fault {

VerifyingAccess::VerifyingAccess(const oracle::InstanceAccess& inner,
                                 metrics::Registry& registry)
    : inner_(&inner),
      detected_total_(&registry.counter(
          "oracle_corruptions_detected_total",
          "Oracle answers rejected by invariant verification")) {}

void VerifyingAccess::reject() const {
  detected_.fetch_add(1, std::memory_order_relaxed);
  detected_total_->inc();
  throw CorruptedAnswer();
}

void VerifyingAccess::verify_item(const knapsack::Item& item) const {
  if (item.profit < 0 || item.profit > total_profit()) reject();
  if (item.weight < 0 || item.weight > total_weight()) reject();
  if (item.weight > capacity()) reject();
}

knapsack::Item VerifyingAccess::do_query(std::size_t i) const {
  const auto item = inner_->query(i);
  verify_item(item);
  return item;
}

oracle::WeightedDraw VerifyingAccess::do_sample(util::Xoshiro256& rng) const {
  const auto draw = inner_->weighted_sample(rng);
  if (draw.index >= size()) reject();
  verify_item(draw.item);
  return draw;
}

}  // namespace lcaknap::fault
