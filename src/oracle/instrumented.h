#ifndef LCAKNAP_ORACLE_INSTRUMENTED_H
#define LCAKNAP_ORACLE_INSTRUMENTED_H

#include <cstdint>
#include <mutex>
#include <optional>

#include "metrics/metrics.h"
#include "oracle/access.h"
#include "oracle/latency_model.h"

/// \file instrumented.h
/// The canonical read-out path for access costs.  `InstrumentedAccess` wraps
/// any oracle and records every call into named metric families in a
/// `metrics::Registry`:
///
///   * `oracle_queries_total`      — per-index queries (Definition 2.2);
///   * `oracle_samples_total`      — weighted-sampling draws (Section 4);
///   * `oracle_access_latency_us`  — simulated per-access latency histogram,
///                                   recorded only when a `LatencyModel` is
///                                   supplied.
///
/// The legacy `InstanceAccess` atomics keep working (the base class still
/// counts every call through this decorator), but they are now shims for
/// single-oracle reads; fleet-level accounting, exporters, and the SLO
/// benches all read the registry.  Placed innermost-but-one in a decorator
/// stack (directly above storage), its counts equal the storage oracle's
/// legacy counters call-for-call — `tests/oracle/instrumented_test.cpp` pins
/// that equivalence.
///
/// Latency simulation draws from the decorator's own mutex-guarded RNG and
/// never touches the caller's sampling tape, so instrumenting an oracle
/// cannot change any algorithmic outcome.

namespace lcaknap::oracle {

class InstrumentedAccess final : public InstanceAccess {
 public:
  /// `inner` must outlive this object.  When `model` is supplied, each access
  /// also observes one simulated latency draw (fixed + exponential tail)
  /// into `oracle_access_latency_us`.
  explicit InstrumentedAccess(const InstanceAccess& inner,
                              metrics::Registry& registry = metrics::global_registry(),
                              std::optional<LatencyModel> model = std::nullopt,
                              std::uint64_t latency_seed = 0x11A7);

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  void record_latency() const;

  const InstanceAccess* inner_;
  metrics::Counter* queries_total_;
  metrics::Counter* samples_total_;
  metrics::Histogram* latency_us_ = nullptr;  // null when no model supplied
  std::optional<LatencyModel> model_;
  mutable std::mutex mutex_;
  mutable util::Xoshiro256 latency_rng_;
};

}  // namespace lcaknap::oracle

#endif  // LCAKNAP_ORACLE_INSTRUMENTED_H
