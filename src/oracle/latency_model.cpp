#include "oracle/latency_model.h"

#include <cmath>

namespace lcaknap::oracle {

LatencyAccess::LatencyAccess(const InstanceAccess& inner, LatencyModel model,
                             std::uint64_t seed)
    : inner_(&inner), model_(model), latency_rng_(seed) {}

double LatencyAccess::simulated_us() const noexcept {
  const std::lock_guard lock(mutex_);
  return total_us_;
}

void LatencyAccess::accrue() const {
  const std::lock_guard lock(mutex_);
  // Inverse-CDF sample of the exponential tail.
  const double u = latency_rng_.next_double();
  total_us_ += model_.fixed_us - model_.exp_mean_us * std::log1p(-u);
}

knapsack::Item LatencyAccess::do_query(std::size_t i) const {
  accrue();
  return inner_->query(i);
}

WeightedDraw LatencyAccess::do_sample(util::Xoshiro256& rng) const {
  accrue();
  return inner_->weighted_sample(rng);
}

}  // namespace lcaknap::oracle
