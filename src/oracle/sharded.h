#ifndef LCAKNAP_ORACLE_SHARDED_H
#define LCAKNAP_ORACLE_SHARDED_H

#include <memory>
#include <vector>

#include "metrics/metrics.h"
#include "oracle/access.h"
#include "util/alias_sampler.h"

/// \file sharded.h
/// A sharded instance oracle: the deployment shape the paper's introduction
/// gestures at, where the input is too large for one machine and lives across
/// s shards.  Queries route by index range; weighted sampling is two-level —
/// pick a shard with probability proportional to its profit mass, then an
/// item within the shard — which composes to exactly the profit-proportional
/// distribution of the flat oracle.  Per-shard access counters expose load
/// balance, and the composition law (global counters == sum of shard
/// counters) is tested.
///
/// Shard traffic is mirrored into the metrics registry as
/// `oracle_shard_accesses_total{shard="s"}` so an operator sees the load
/// split live.  To bound label cardinality, the mirror is only installed for
/// fleets of at most `kMaxLabeledShards` shards; `shard_load` always works.

namespace lcaknap::oracle {

class ShardedAccess final : public InstanceAccess {
 public:
  /// Largest fleet that still gets per-shard labeled registry counters.
  static constexpr std::size_t kMaxLabeledShards = 256;

  /// Splits `instance` into `shards` contiguous index ranges.  The instance
  /// must outlive this object.  shards must be in [1, size].
  ShardedAccess(const knapsack::Instance& instance, std::size_t shards,
                metrics::Registry& registry = metrics::global_registry());

  [[nodiscard]] std::size_t size() const noexcept override;
  [[nodiscard]] std::int64_t capacity() const noexcept override;
  [[nodiscard]] std::int64_t total_profit() const noexcept override;
  [[nodiscard]] std::int64_t total_weight() const noexcept override;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Accesses (queries + samples) routed to shard `s` so far.
  [[nodiscard]] std::uint64_t shard_load(std::size_t s) const;

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  struct Shard {
    std::size_t begin = 0;  // global index of the shard's first item
    std::size_t end = 0;    // one past the last
    std::unique_ptr<util::AliasSampler> sampler;  // over items within the shard
    mutable std::atomic<std::uint64_t> load{0};
    metrics::Counter* traffic = nullptr;  // labeled registry mirror (may be null)
  };

  [[nodiscard]] const Shard& shard_for(std::size_t index) const;

  const knapsack::Instance* instance_;
  std::vector<Shard> shards_;
  std::unique_ptr<util::AliasSampler> shard_picker_;  // over shard profit masses
};

}  // namespace lcaknap::oracle

#endif  // LCAKNAP_ORACLE_SHARDED_H
