#include "oracle/flaky.h"

#include <stdexcept>

namespace lcaknap::oracle {

FlakyAccess::FlakyAccess(const InstanceAccess& inner, double failure_rate,
                         std::uint64_t seed, metrics::Registry& registry)
    : inner_(&inner),
      failure_rate_(failure_rate),
      failures_total_(&registry.counter(
          "oracle_failures_total",
          "Transient oracle failures injected before reaching storage")),
      fail_rng_(seed) {
  if (failure_rate < 0.0 || failure_rate >= 1.0) {
    throw std::invalid_argument("FlakyAccess: failure_rate must be in [0, 1)");
  }
}

std::uint64_t FlakyAccess::failures_injected() const noexcept {
  const std::lock_guard lock(mutex_);
  return failures_;
}

void FlakyAccess::maybe_fail() const {
  bool fail = false;
  {
    const std::lock_guard lock(mutex_);
    if (fail_rng_.next_double() < failure_rate_) {
      ++failures_;
      fail = true;
    }
  }
  if (fail) {
    failures_total_->inc();
    throw OracleUnavailable();
  }
}

knapsack::Item FlakyAccess::do_query(std::size_t i) const {
  maybe_fail();
  return inner_->query(i);
}

WeightedDraw FlakyAccess::do_sample(util::Xoshiro256& rng) const {
  maybe_fail();
  return inner_->weighted_sample(rng);
}

RetryingAccess::RetryingAccess(const InstanceAccess& inner, int max_attempts,
                               metrics::Registry& registry)
    : inner_(&inner),
      max_attempts_(max_attempts),
      retries_total_(&registry.counter(
          "oracle_retries_total",
          "Oracle call attempts absorbed by the client-side retry policy")) {
  if (max_attempts < 1) {
    throw std::invalid_argument("RetryingAccess: max_attempts must be >= 1");
  }
}

knapsack::Item RetryingAccess::do_query(std::size_t i) const {
  for (int attempt = 1;; ++attempt) {
    try {
      return inner_->query(i);
    } catch (const OracleUnavailable&) {
      if (attempt >= max_attempts_) throw;
      retries_.fetch_add(1, std::memory_order_relaxed);
      retries_total_->inc();
    }
  }
}

WeightedDraw RetryingAccess::do_sample(util::Xoshiro256& rng) const {
  for (int attempt = 1;; ++attempt) {
    try {
      return inner_->weighted_sample(rng);
    } catch (const OracleUnavailable&) {
      if (attempt >= max_attempts_) throw;
      retries_.fetch_add(1, std::memory_order_relaxed);
      retries_total_->inc();
    }
  }
}

}  // namespace lcaknap::oracle
