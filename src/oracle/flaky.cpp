#include "oracle/flaky.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lcaknap::oracle {

FlakyAccess::FlakyAccess(const InstanceAccess& inner, double failure_rate,
                         std::uint64_t seed, metrics::Registry& registry)
    : inner_(&inner),
      failure_rate_(failure_rate),
      failures_total_(&registry.counter(
          "oracle_failures_total",
          "Transient oracle failures injected before reaching storage")),
      fail_rng_(seed) {
  // Written as a negated conjunction so NaN (which fails every comparison)
  // is rejected instead of silently behaving like rate 0.
  if (!(failure_rate >= 0.0 && failure_rate < 1.0)) {
    throw std::invalid_argument("FlakyAccess: failure_rate must be in [0, 1)");
  }
}

std::uint64_t FlakyAccess::failures_injected() const noexcept {
  const std::lock_guard lock(mutex_);
  return failures_;
}

void FlakyAccess::maybe_fail() const {
  bool fail = false;
  {
    const std::lock_guard lock(mutex_);
    if (fail_rng_.next_double() < failure_rate_) {
      ++failures_;
      fail = true;
    }
  }
  if (fail) {
    failures_total_->inc();
    throw OracleUnavailable();
  }
}

knapsack::Item FlakyAccess::do_query(std::size_t i) const {
  maybe_fail();
  return inner_->query(i);
}

WeightedDraw FlakyAccess::do_sample(util::Xoshiro256& rng) const {
  maybe_fail();
  return inner_->weighted_sample(rng);
}

std::vector<double> backoff_sleep_buckets() {
  return metrics::Histogram::exponential_buckets(1.0, 4.0, 11);
}

namespace {

RetryConfig legacy_config(int max_attempts) {
  RetryConfig config;
  config.max_attempts = max_attempts;
  config.base_backoff_us = 0;  // immediate retries, exactly as before
  config.retry_budget_ratio = 0.0;
  config.attempt_timeout_us = 0;
  return config;
}

void validate(const RetryConfig& config) {
  if (config.max_attempts < 1) {
    throw std::invalid_argument("RetryingAccess: max_attempts must be >= 1");
  }
  if (config.max_backoff_us < config.base_backoff_us) {
    throw std::invalid_argument(
        "RetryingAccess: max_backoff_us must be >= base_backoff_us");
  }
  if (!(config.backoff_multiplier >= 1.0) ||
      !std::isfinite(config.backoff_multiplier)) {
    throw std::invalid_argument(
        "RetryingAccess: backoff_multiplier must be finite and >= 1");
  }
  if (!(config.retry_budget_ratio >= 0.0) ||
      !std::isfinite(config.retry_budget_ratio)) {
    throw std::invalid_argument(
        "RetryingAccess: retry_budget_ratio must be finite and >= 0");
  }
}

}  // namespace

RetryingAccess::RetryingAccess(const InstanceAccess& inner, int max_attempts,
                               metrics::Registry& registry)
    : RetryingAccess(inner, legacy_config(max_attempts), util::system_clock(),
                     registry) {}

RetryingAccess::RetryingAccess(const InstanceAccess& inner, const RetryConfig& config,
                               util::Clock& clock, metrics::Registry& registry)
    : inner_(&inner),
      config_(config),
      clock_(&clock),
      jitter_(util::mix64(config.jitter_seed)),
      retries_total_(&registry.counter(
          "oracle_retries_total",
          "Oracle call attempts absorbed by the client-side retry policy")),
      budget_exhausted_total_(&registry.counter(
          "oracle_retry_budget_exhausted_total",
          "Oracle calls that gave up because the global retry budget was empty")),
      backoff_sleep_us_(&registry.histogram(
          "oracle_backoff_sleep_us",
          "Backoff sleeps between oracle retry attempts, in microseconds",
          backoff_sleep_buckets())) {
  validate(config);
}

bool RetryingAccess::try_spend_budget() const noexcept {
  if (config_.retry_budget_ratio <= 0.0) return true;  // unlimited
  const auto earned = static_cast<std::uint64_t>(
      config_.retry_budget_ratio *
      static_cast<double>(successes_.load(std::memory_order_relaxed)));
  const auto allowance = config_.retry_budget_initial + earned;
  if (budget_spent_.load(std::memory_order_relaxed) >= allowance) return false;
  budget_spent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

template <typename Call>
auto RetryingAccess::with_retries(const Call& call) const -> decltype(call()) {
  const std::uint64_t start_us =
      config_.attempt_timeout_us > 0 ? clock_->now_us() : 0;
  // Decorrelated jitter (AWS-style): each sleep is uniform in
  // [base, prev * multiplier], clamped to max — growth with spread, so
  // synchronized clients de-synchronize instead of thundering together.
  std::uint64_t prev_sleep_us = config_.base_backoff_us;
  for (int attempt = 1;; ++attempt) {
    try {
      auto result = call();
      successes_.fetch_add(1, std::memory_order_relaxed);
      return result;
    } catch (const OracleUnavailable&) {
      if (attempt >= config_.max_attempts) throw;
      if (!try_spend_budget()) {
        budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
        budget_exhausted_total_->inc();
        throw;
      }
      std::uint64_t sleep_us = 0;
      if (config_.base_backoff_us > 0) {
        const double lo = static_cast<double>(config_.base_backoff_us);
        const double hi = std::max(
            lo, static_cast<double>(prev_sleep_us) * config_.backoff_multiplier);
        const auto draw = jitter_draws_.fetch_add(1, std::memory_order_relaxed);
        const double u = jitter_.uniform(/*stream=*/1, draw);
        sleep_us = std::min<std::uint64_t>(
            config_.max_backoff_us,
            static_cast<std::uint64_t>(lo + u * (hi - lo)));
        prev_sleep_us = sleep_us;
      }
      if (config_.attempt_timeout_us > 0 &&
          clock_->now_us() - start_us + sleep_us >= config_.attempt_timeout_us) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        throw;
      }
      if (sleep_us > 0) {
        backoff_sleep_us_->observe(static_cast<double>(sleep_us));
        slept_us_.fetch_add(sleep_us, std::memory_order_relaxed);
        clock_->sleep_us(sleep_us);
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      retries_total_->inc();
    }
  }
}

knapsack::Item RetryingAccess::do_query(std::size_t i) const {
  return with_retries([&] { return inner_->query(i); });
}

WeightedDraw RetryingAccess::do_sample(util::Xoshiro256& rng) const {
  return with_retries([&] { return inner_->weighted_sample(rng); });
}

}  // namespace lcaknap::oracle
