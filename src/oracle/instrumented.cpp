#include "oracle/instrumented.h"

#include <cmath>

namespace lcaknap::oracle {

namespace {
constexpr const char* kLatencyHelp =
    "Simulated per-access oracle latency in microseconds (fixed + exp tail)";
}  // namespace

InstrumentedAccess::InstrumentedAccess(const InstanceAccess& inner,
                                       metrics::Registry& registry,
                                       std::optional<LatencyModel> model,
                                       std::uint64_t latency_seed)
    : inner_(&inner),
      queries_total_(&registry.counter(
          "oracle_queries_total",
          "Per-index oracle queries (Definition 2.2 query access)")),
      samples_total_(&registry.counter(
          "oracle_samples_total",
          "Profit-weighted sampling draws ([IKY12] sampling access)")),
      model_(model),
      latency_rng_(latency_seed) {
  if (model_.has_value()) {
    latency_us_ = &registry.histogram(
        "oracle_access_latency_us", kLatencyHelp,
        metrics::Histogram::exponential_buckets(10.0, 1.6, 22));
  }
}

void InstrumentedAccess::record_latency() const {
  if (latency_us_ == nullptr) return;
  double us = 0.0;
  {
    const std::lock_guard lock(mutex_);
    const double u = latency_rng_.next_double();
    us = model_->fixed_us - model_->exp_mean_us * std::log1p(-u);
  }
  latency_us_->observe(us);
}

knapsack::Item InstrumentedAccess::do_query(std::size_t i) const {
  queries_total_->inc();
  record_latency();
  return inner_->query(i);
}

WeightedDraw InstrumentedAccess::do_sample(util::Xoshiro256& rng) const {
  samples_total_->inc();
  record_latency();
  return inner_->weighted_sample(rng);
}

}  // namespace lcaknap::oracle
