#ifndef LCAKNAP_ORACLE_ACCESS_H
#define LCAKNAP_ORACLE_ACCESS_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "knapsack/instance.h"
#include "util/alias_sampler.h"
#include "util/rng.h"

/// \file access.h
/// The access model.  Algorithms never touch an `Instance` directly; they go
/// through `InstanceAccess`, which provides exactly the two operations the
/// paper's model grants and *counts every use*:
///
///  * `query(i)` — per-index query access (Definition 2.2);
///  * `weighted_sample()` — an item drawn with probability proportional to
///    its profit (the [IKY12] weighted-sampling access of Section 4).
///
/// Instance metadata that the model treats as known — the number of items n,
/// the capacity K, and the normalization constants (total profit/weight are
/// both normalized to 1 in Section 4) — is available without being counted.
///
/// The *canonical* read-out path for these costs is the metrics registry fed
/// by `InstrumentedAccess` (see instrumented.h): `oracle_queries_total` and
/// `oracle_samples_total` are what the benches, the CLI's `--metrics`
/// exporters, and docs/OBSERVABILITY.md report.  The per-object atomics below
/// (`query_count` / `sample_count` / `access_count`) remain as shims — handy
/// for single-oracle tests and kept bit-equal to the registry by
/// tests/oracle/instrumented_test.cpp.

namespace lcaknap::oracle {

/// One weighted-sampling draw: the item's index and its contents.
struct WeightedDraw {
  std::size_t index = 0;
  knapsack::Item item;
};

/// Thrown by unreliable oracles (see flaky.h) to model a transient failure
/// of the (conceptually remote) input service.
class OracleUnavailable : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "oracle temporarily unavailable";
  }
};

class InstanceAccess {
 public:
  virtual ~InstanceAccess() = default;

  // --- free metadata -----------------------------------------------------
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] virtual std::int64_t capacity() const noexcept = 0;
  [[nodiscard]] virtual std::int64_t total_profit() const noexcept = 0;
  [[nodiscard]] virtual std::int64_t total_weight() const noexcept = 0;

  [[nodiscard]] double norm_capacity() const noexcept {
    return static_cast<double>(capacity()) / static_cast<double>(total_weight());
  }
  /// Normalized views of a previously queried item (no extra query cost).
  [[nodiscard]] double norm_profit(const knapsack::Item& it) const noexcept {
    return static_cast<double>(it.profit) / static_cast<double>(total_profit());
  }
  [[nodiscard]] double norm_weight(const knapsack::Item& it) const noexcept {
    return static_cast<double>(it.weight) / static_cast<double>(total_weight());
  }
  /// Normalized efficiency p/w; +infinity for zero-weight items.
  [[nodiscard]] double efficiency(const knapsack::Item& it) const noexcept;

  // --- counted access ----------------------------------------------------
  /// Reveals item i; one unit of query cost.
  [[nodiscard]] knapsack::Item query(std::size_t i) const {
    queries_.fetch_add(1, std::memory_order_relaxed);
    return do_query(i);
  }
  /// Draws an item with probability proportional to its profit; one unit of
  /// sample cost.  `rng` is the caller's fresh-randomness tape and is
  /// single-owner: it mutates on every draw, so concurrent callers (e.g.
  /// serving-engine workers) must each pass their own tape.  The access
  /// object itself is safe to share — counting is atomic and
  /// implementations keep any internal randomness behind their own locks.
  [[nodiscard]] WeightedDraw weighted_sample(util::Xoshiro256& rng) const {
    samples_.fetch_add(1, std::memory_order_relaxed);
    return do_sample(rng);
  }

  // --- accounting ----------------------------------------------------------
  [[nodiscard]] std::uint64_t query_count() const noexcept {
    return queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sample_count() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  /// Total accesses of either kind (the "queries to the instance" of the
  /// paper's lower bounds, which charge weighted samples and index queries
  /// alike).
  [[nodiscard]] std::uint64_t access_count() const noexcept {
    return query_count() + sample_count();
  }
  void reset_counters() const noexcept {
    queries_.store(0, std::memory_order_relaxed);
    samples_.store(0, std::memory_order_relaxed);
  }

 protected:
  [[nodiscard]] virtual knapsack::Item do_query(std::size_t i) const = 0;
  [[nodiscard]] virtual WeightedDraw do_sample(util::Xoshiro256& rng) const = 0;

 private:
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> samples_{0};
};

/// Access backed by an in-memory Instance; weighted sampling via an alias
/// table over the profits (O(1) per draw).
class MaterializedAccess final : public InstanceAccess {
 public:
  /// The instance must outlive this access object.
  explicit MaterializedAccess(const knapsack::Instance& instance);

  [[nodiscard]] std::size_t size() const noexcept override;
  [[nodiscard]] std::int64_t capacity() const noexcept override;
  [[nodiscard]] std::int64_t total_profit() const noexcept override;
  [[nodiscard]] std::int64_t total_weight() const noexcept override;

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  const knapsack::Instance* instance_;
  util::AliasSampler sampler_;
};

}  // namespace lcaknap::oracle

#endif  // LCAKNAP_ORACLE_ACCESS_H
