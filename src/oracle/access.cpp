#include "oracle/access.h"

#include <limits>
#include <vector>

namespace lcaknap::oracle {

double InstanceAccess::efficiency(const knapsack::Item& it) const noexcept {
  if (it.weight == 0) return std::numeric_limits<double>::infinity();
  return norm_profit(it) / norm_weight(it);
}

namespace {
std::vector<double> profit_weights(const knapsack::Instance& instance) {
  std::vector<double> weights;
  weights.reserve(instance.size());
  for (const auto& it : instance.items()) {
    weights.push_back(static_cast<double>(it.profit));
  }
  return weights;
}
}  // namespace

MaterializedAccess::MaterializedAccess(const knapsack::Instance& instance)
    : instance_(&instance), sampler_(profit_weights(instance)) {}

std::size_t MaterializedAccess::size() const noexcept { return instance_->size(); }
std::int64_t MaterializedAccess::capacity() const noexcept {
  return instance_->capacity();
}
std::int64_t MaterializedAccess::total_profit() const noexcept {
  return instance_->total_profit();
}
std::int64_t MaterializedAccess::total_weight() const noexcept {
  return instance_->total_weight();
}

knapsack::Item MaterializedAccess::do_query(std::size_t i) const {
  return instance_->item(i);
}

WeightedDraw MaterializedAccess::do_sample(util::Xoshiro256& rng) const {
  const std::size_t index = sampler_.sample(rng);
  return {index, instance_->item(index)};
}

}  // namespace lcaknap::oracle
