#include "oracle/sharded.h"

#include <stdexcept>
#include <string>

namespace lcaknap::oracle {

ShardedAccess::ShardedAccess(const knapsack::Instance& instance, std::size_t shards,
                             metrics::Registry& registry)
    : instance_(&instance) {
  const std::size_t n = instance.size();
  if (shards == 0 || shards > n) {
    throw std::invalid_argument("ShardedAccess: shards must be in [1, n]");
  }
  shards_ = std::vector<Shard>(shards);
  std::vector<double> shard_masses(shards, 0.0);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t count = base + (s < extra ? 1 : 0);
    shards_[s].begin = cursor;
    shards_[s].end = cursor + count;
    std::vector<double> weights;
    weights.reserve(count);
    for (std::size_t i = shards_[s].begin; i < shards_[s].end; ++i) {
      const double p = static_cast<double>(instance.item(i).profit);
      weights.push_back(p);
      shard_masses[s] += p;
    }
    // A shard whose items all have zero profit can never be drawn; give its
    // sampler a degenerate positive weight so construction succeeds, and set
    // the shard mass to zero so the picker skips it.
    if (shard_masses[s] <= 0.0) {
      weights.assign(count, 1.0);
    }
    shards_[s].sampler = std::make_unique<util::AliasSampler>(weights);
    if (shards <= kMaxLabeledShards) {
      shards_[s].traffic = &registry.counter(
          "oracle_shard_accesses_total",
          "Oracle accesses (queries + samples) routed to each shard",
          {{"shard", std::to_string(s)}});
    }
    cursor = shards_[s].end;
  }
  shard_picker_ = std::make_unique<util::AliasSampler>(shard_masses);
}

std::size_t ShardedAccess::size() const noexcept { return instance_->size(); }
std::int64_t ShardedAccess::capacity() const noexcept { return instance_->capacity(); }
std::int64_t ShardedAccess::total_profit() const noexcept {
  return instance_->total_profit();
}
std::int64_t ShardedAccess::total_weight() const noexcept {
  return instance_->total_weight();
}

std::uint64_t ShardedAccess::shard_load(std::size_t s) const {
  return shards_.at(s).load.load(std::memory_order_relaxed);
}

const ShardedAccess::Shard& ShardedAccess::shard_for(std::size_t index) const {
  const std::size_t n = instance_->size();
  if (index >= n) throw std::out_of_range("ShardedAccess: index out of range");
  const std::size_t shards = shards_.size();
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  // Indices below the split point live in shards of size base+1.
  const std::size_t split = extra * (base + 1);
  const std::size_t s = index < split ? index / (base + 1)
                                      : extra + (index - split) / base;
  return shards_[s];
}

knapsack::Item ShardedAccess::do_query(std::size_t i) const {
  const Shard& shard = shard_for(i);
  shard.load.fetch_add(1, std::memory_order_relaxed);
  if (shard.traffic != nullptr) shard.traffic->inc();
  return instance_->item(i);
}

WeightedDraw ShardedAccess::do_sample(util::Xoshiro256& rng) const {
  const std::size_t s = shard_picker_->sample(rng);
  const Shard& shard = shards_[s];
  shard.load.fetch_add(1, std::memory_order_relaxed);
  if (shard.traffic != nullptr) shard.traffic->inc();
  const std::size_t local = shard.sampler->sample(rng);
  const std::size_t global = shard.begin + local;
  return {global, instance_->item(global)};
}

}  // namespace lcaknap::oracle
