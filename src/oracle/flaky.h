#ifndef LCAKNAP_ORACLE_FLAKY_H
#define LCAKNAP_ORACLE_FLAKY_H

#include <cstdint>
#include <mutex>

#include "metrics/metrics.h"
#include "oracle/access.h"
#include "util/virtual_clock.h"

/// \file flaky.h
/// Failure injection for the access layer.  In the distributed deployments
/// that motivate LCAs, the "instance" is a remote service; a replica must
/// tolerate transient failures without breaking consistency.  `FlakyAccess`
/// makes a wrapped oracle fail a configurable fraction of calls (the
/// single-rate special case of the scripted fault plans in src/fault/);
/// `RetryingAccess` is the corresponding client-side policy: bounded
/// attempts, exponential backoff with decorrelated jitter, a per-call
/// retry-time cap, and a global retry budget.  Tests verify that retrying
/// restores exactness and that LCA answers are unaffected (retries consume
/// fresh sampling randomness only).
///
/// Both decorators feed the metrics registry: injected failures increment
/// `oracle_failures_total`, absorbed retries increment `oracle_retries_total`
/// — the fleet-level view of the same events the per-instance accessors
/// (`failures_injected`, `retries_performed`) report locally.
///
/// Thread safety (audited for the serving engine's worker pool): both
/// decorators are safe for concurrent callers.  `FlakyAccess` serializes
/// its failure-decision RNG and failure count behind a mutex (the RNG is
/// the only mutable PRNG state either decorator owns); `RetryingAccess`
/// keeps only an atomic retry counter; registry counters are lock-free.
/// The one single-owner object in any call is the *caller's* sampling tape
/// — the `Xoshiro256&` passed to `weighted_sample` mutates on every draw
/// and must not be shared across threads (see access.h).  Under concurrency
/// the per-thread failure sequences are no longer deterministic (threads
/// interleave draws from the shared failure RNG), but conservation holds
/// exactly: every injected failure is observed by exactly one caller.
/// tests/oracle/test_concurrent_access.cpp hammers both properties.

namespace lcaknap::oracle {

/// Decorator that throws OracleUnavailable on a `failure_rate` fraction of
/// calls (decided by its own internal RNG, deterministic per seed).
class FlakyAccess final : public InstanceAccess {
 public:
  /// `inner` must outlive this object.  failure_rate in [0, 1).
  FlakyAccess(const InstanceAccess& inner, double failure_rate, std::uint64_t seed,
              metrics::Registry& registry = metrics::global_registry());

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  /// Number of injected failures so far.
  [[nodiscard]] std::uint64_t failures_injected() const noexcept;

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  void maybe_fail() const;

  const InstanceAccess* inner_;
  double failure_rate_;
  metrics::Counter* failures_total_;
  mutable std::mutex mutex_;
  mutable util::Xoshiro256 fail_rng_;
  mutable std::uint64_t failures_ = 0;
};

/// Client-side retry policy.  Validated by the constructor (throws
/// std::invalid_argument on nonsense values); the defaults reproduce the
/// historical behavior — immediate retries, no budget, no time cap.
struct RetryConfig {
  /// Total tries per call (1 = no retries).  Must be >= 1.
  int max_attempts = 16;
  /// First backoff sleep; 0 disables backoff entirely (immediate retries).
  std::uint64_t base_backoff_us = 0;
  /// Ceiling for any single backoff sleep.  Must be >= base_backoff_us.
  std::uint64_t max_backoff_us = 100'000;
  /// Growth factor for decorrelated jitter: each sleep is drawn uniformly in
  /// [base, previous * multiplier], clamped to max.  Must be >= 1.
  double backoff_multiplier = 3.0;
  /// Per-call cap on time spent retrying (on the injected clock): once a
  /// call's elapsed time plus its next sleep would exceed this, give up and
  /// rethrow.  0 = no cap.
  std::uint64_t attempt_timeout_us = 0;
  /// Global retry budget: each *successful* call earns this fraction of a
  /// retry token; a retry spends one.  When the purse is empty the failure
  /// is rethrown immediately — a fleet-protection valve against retry
  /// storms.  0 = unlimited retries.  Must be >= 0 and finite.
  double retry_budget_ratio = 0.0;
  /// Tokens pre-funded at construction, so startup failures can retry
  /// before any call has succeeded.
  std::uint64_t retry_budget_initial = 16;
  /// Seed of the deterministic jitter tape (a Prf indexed by a global retry
  /// counter — never the caller's sampling tape).
  std::uint64_t jitter_seed = 0x7E77;
};

/// Decorator that retries the wrapped oracle per a `RetryConfig`, then
/// rethrows.  Sleeps (if backoff is on) run on the injected `util::Clock`,
/// so tests exercise the full policy over a VirtualClock with no real
/// waiting; each sleep is observed into `oracle_backoff_sleep_us` and
/// budget-exhausted giveups increment `oracle_retry_budget_exhausted_total`.
class RetryingAccess final : public InstanceAccess {
 public:
  /// Legacy shape: immediate retries up to `max_attempts`, no budget.
  /// `inner` must outlive this object.
  explicit RetryingAccess(const InstanceAccess& inner, int max_attempts = 16,
                          metrics::Registry& registry = metrics::global_registry());
  /// Full policy.  `inner` and `clock` must outlive this object.
  RetryingAccess(const InstanceAccess& inner, const RetryConfig& config,
                 util::Clock& clock = util::system_clock(),
                 metrics::Registry& registry = metrics::global_registry());

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  [[nodiscard]] std::uint64_t retries_performed() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }
  /// Calls that gave up early because the retry budget was empty.
  [[nodiscard]] std::uint64_t budget_exhausted() const noexcept {
    return budget_exhausted_.load(std::memory_order_relaxed);
  }
  /// Calls that gave up early against `attempt_timeout_us`.
  [[nodiscard]] std::uint64_t timed_out() const noexcept {
    return timeouts_.load(std::memory_order_relaxed);
  }
  /// Total (virtual or real) microseconds slept in backoff.
  [[nodiscard]] std::uint64_t backoff_slept_us() const noexcept {
    return slept_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const RetryConfig& retry_config() const noexcept { return config_; }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  template <typename Call>
  auto with_retries(const Call& call) const -> decltype(call());
  /// Spends one budget token if the purse allows another retry.  Accounting
  /// is relaxed-atomic: exact single-threaded, and never more than one
  /// token per concurrent caller optimistic under contention — the
  /// conservation hammer in tests/fault/ bounds the slack.
  [[nodiscard]] bool try_spend_budget() const noexcept;

  const InstanceAccess* inner_;
  RetryConfig config_;
  util::Clock* clock_;
  util::Prf jitter_;
  metrics::Counter* retries_total_;
  metrics::Counter* budget_exhausted_total_;
  metrics::Histogram* backoff_sleep_us_;
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> successes_{0};
  mutable std::atomic<std::uint64_t> budget_spent_{0};
  mutable std::atomic<std::uint64_t> budget_exhausted_{0};
  mutable std::atomic<std::uint64_t> timeouts_{0};
  mutable std::atomic<std::uint64_t> slept_us_{0};
  mutable std::atomic<std::uint64_t> jitter_draws_{0};
};

/// Bucket bounds for `oracle_backoff_sleep_us` (1 us .. ~1 s, powers of 4).
[[nodiscard]] std::vector<double> backoff_sleep_buckets();

}  // namespace lcaknap::oracle

#endif  // LCAKNAP_ORACLE_FLAKY_H
