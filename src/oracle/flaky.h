#ifndef LCAKNAP_ORACLE_FLAKY_H
#define LCAKNAP_ORACLE_FLAKY_H

#include <cstdint>
#include <mutex>

#include "metrics/metrics.h"
#include "oracle/access.h"

/// \file flaky.h
/// Failure injection for the access layer.  In the distributed deployments
/// that motivate LCAs, the "instance" is a remote service; a replica must
/// tolerate transient failures without breaking consistency.  `FlakyAccess`
/// makes a wrapped oracle fail a configurable fraction of calls;
/// `RetryingAccess` is the corresponding client-side policy.  Tests verify
/// that retrying restores exactness and that LCA answers are unaffected
/// (retries consume fresh sampling randomness only).
///
/// Both decorators feed the metrics registry: injected failures increment
/// `oracle_failures_total`, absorbed retries increment `oracle_retries_total`
/// — the fleet-level view of the same events the per-instance accessors
/// (`failures_injected`, `retries_performed`) report locally.
///
/// Thread safety (audited for the serving engine's worker pool): both
/// decorators are safe for concurrent callers.  `FlakyAccess` serializes
/// its failure-decision RNG and failure count behind a mutex (the RNG is
/// the only mutable PRNG state either decorator owns); `RetryingAccess`
/// keeps only an atomic retry counter; registry counters are lock-free.
/// The one single-owner object in any call is the *caller's* sampling tape
/// — the `Xoshiro256&` passed to `weighted_sample` mutates on every draw
/// and must not be shared across threads (see access.h).  Under concurrency
/// the per-thread failure sequences are no longer deterministic (threads
/// interleave draws from the shared failure RNG), but conservation holds
/// exactly: every injected failure is observed by exactly one caller.
/// tests/oracle/test_concurrent_access.cpp hammers both properties.

namespace lcaknap::oracle {

/// Decorator that throws OracleUnavailable on a `failure_rate` fraction of
/// calls (decided by its own internal RNG, deterministic per seed).
class FlakyAccess final : public InstanceAccess {
 public:
  /// `inner` must outlive this object.  failure_rate in [0, 1).
  FlakyAccess(const InstanceAccess& inner, double failure_rate, std::uint64_t seed,
              metrics::Registry& registry = metrics::global_registry());

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  /// Number of injected failures so far.
  [[nodiscard]] std::uint64_t failures_injected() const noexcept;

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  void maybe_fail() const;

  const InstanceAccess* inner_;
  double failure_rate_;
  metrics::Counter* failures_total_;
  mutable std::mutex mutex_;
  mutable util::Xoshiro256 fail_rng_;
  mutable std::uint64_t failures_ = 0;
};

/// Decorator that retries the wrapped oracle up to `max_attempts` times per
/// call, then rethrows.
class RetryingAccess final : public InstanceAccess {
 public:
  /// `inner` must outlive this object.
  explicit RetryingAccess(const InstanceAccess& inner, int max_attempts = 16,
                          metrics::Registry& registry = metrics::global_registry());

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  [[nodiscard]] std::uint64_t retries_performed() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  const InstanceAccess* inner_;
  int max_attempts_;
  metrics::Counter* retries_total_;
  mutable std::atomic<std::uint64_t> retries_{0};
};

}  // namespace lcaknap::oracle

#endif  // LCAKNAP_ORACLE_FLAKY_H
