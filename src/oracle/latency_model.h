#ifndef LCAKNAP_ORACLE_LATENCY_MODEL_H
#define LCAKNAP_ORACLE_LATENCY_MODEL_H

#include <atomic>
#include <cstdint>
#include <mutex>

#include "oracle/access.h"

/// \file latency_model.h
/// Simulated access latency.  The paper reasons about query *counts*; when a
/// bench wants to translate counts into wall-clock terms for a remote oracle
/// (e.g. "instance shard served over RPC"), this decorator accrues a
/// simulated latency per access — a fixed cost plus an exponential tail —
/// without actually sleeping.  Benches report the accumulated virtual time.

namespace lcaknap::oracle {

struct LatencyModel {
  double fixed_us = 50.0;      ///< per-call fixed cost (microseconds)
  double exp_mean_us = 20.0;   ///< mean of the exponential tail (microseconds)
};

class LatencyAccess final : public InstanceAccess {
 public:
  /// `inner` must outlive this object.
  LatencyAccess(const InstanceAccess& inner, LatencyModel model, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  /// Accumulated simulated latency across all accesses, in microseconds.
  [[nodiscard]] double simulated_us() const noexcept;

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override;
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override;

 private:
  void accrue() const;

  const InstanceAccess* inner_;
  LatencyModel model_;
  mutable std::mutex mutex_;
  mutable util::Xoshiro256 latency_rng_;
  mutable double total_us_ = 0.0;
};

}  // namespace lcaknap::oracle

#endif  // LCAKNAP_ORACLE_LATENCY_MODEL_H
