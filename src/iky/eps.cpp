#include "iky/eps.h"

#include <algorithm>
#include <stdexcept>

#include "iky/partition.h"
#include "util/stats.h"

namespace lcaknap::iky {

std::vector<std::int64_t> estimate_eps_grid(
    std::span<const std::int64_t> efficiency_grid_samples, double q, int t) {
  if (efficiency_grid_samples.empty()) {
    throw std::invalid_argument("estimate_eps_grid: no samples");
  }
  if (!(q > 0.0 && q <= 1.0) || t < 0) {
    throw std::invalid_argument("estimate_eps_grid: bad q or t");
  }
  const util::EmpiricalCdfInt ecdf(efficiency_grid_samples);
  std::vector<std::int64_t> thresholds;
  thresholds.reserve(static_cast<std::size_t>(t));
  for (int k = 1; k <= t; ++k) {
    const double p = 1.0 - static_cast<double>(k) * q;
    thresholds.push_back(ecdf.quantile(std::max(p, 0.0)));
  }
  // Quantiles of a CDF are non-increasing in k by construction, but assert
  // the invariant cheaply.
  for (std::size_t k = 1; k < thresholds.size(); ++k) {
    if (thresholds[k] > thresholds[k - 1]) {
      thresholds[k] = thresholds[k - 1];
    }
  }
  return thresholds;
}

std::vector<double> exact_eps(const knapsack::Instance& instance, double eps) {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("exact_eps: eps must be in (0, 1)");
  }
  const Partition part = partition_instance(instance, eps);
  std::vector<std::pair<double, double>> eff_mass;  // (efficiency, profit)
  eff_mass.reserve(part.small.size());
  for (const auto i : part.small) {
    eff_mass.emplace_back(instance.efficiency(i), instance.norm_profit(i));
  }
  std::sort(eff_mass.begin(), eff_mass.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<double> thresholds;
  double acc = 0.0;
  for (const auto& [eff, mass] : eff_mass) {
    acc += mass;
    if (acc >= eps) {
      // Never emit an increasing threshold (possible when one efficiency
      // atom spans several bands' worth of mass).
      if (thresholds.empty() || eff < thresholds.back()) thresholds.push_back(eff);
      acc = 0.0;
    }
  }
  return thresholds;
}

EpsValidity check_eps(const knapsack::Instance& instance,
                      std::span<const double> thresholds, double eps,
                      double slack) {
  for (std::size_t k = 1; k < thresholds.size(); ++k) {
    if (thresholds[k] > thresholds[k - 1]) {
      throw std::invalid_argument("check_eps: thresholds must be non-increasing");
    }
  }
  EpsValidity result;
  result.band_masses.assign(thresholds.size() + 1, 0.0);
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const double p = instance.norm_profit(i);
    if (classify_item(p, instance.efficiency(i), eps) != ItemClass::kSmall) continue;
    const double e = instance.efficiency(i);
    // Band 0: e >= e_1; band k: e_{k+1} <= e < e_k; band t: e < e_t.
    std::size_t band = thresholds.size();
    for (std::size_t k = 0; k < thresholds.size(); ++k) {
      if (e >= thresholds[k]) {
        band = k;
        break;
      }
    }
    result.band_masses[band] += p;
  }
  const double hi = eps + eps * eps + slack;
  const double lo = eps - slack;
  result.valid = true;
  for (std::size_t k = 0; k + 1 < result.band_masses.size(); ++k) {
    if (result.band_masses[k] < lo || result.band_masses[k] >= hi) {
      result.valid = false;
    }
  }
  if (!result.band_masses.empty() && result.band_masses.back() >= hi) {
    result.valid = false;
  }
  return result;
}

}  // namespace lcaknap::iky
