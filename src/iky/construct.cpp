#include "iky/construct.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "knapsack/instance.h"
#include "knapsack/solvers/solve.h"

namespace lcaknap::iky {

double TildeInstance::large_profit() const {
  double total = 0.0;
  for (const auto& it : items) {
    if (it.is_large) total += it.profit;
  }
  return total;
}

TildeInstance construct_tilde(std::span<const NormLargeItem> large,
                              std::span<const double> eps_thresholds, double eps,
                              double norm_capacity) {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("construct_tilde: eps must be in (0, 1)");
  }
  for (std::size_t k = 1; k < eps_thresholds.size(); ++k) {
    if (eps_thresholds[k] > eps_thresholds[k - 1]) {
      throw std::invalid_argument("construct_tilde: thresholds must be non-increasing");
    }
  }
  TildeInstance tilde;
  tilde.capacity = norm_capacity;
  const double eps2 = eps * eps;
  const auto copies = static_cast<int>(std::floor(1.0 / eps));

  for (const auto& item : large) {
    TildeItem t;
    t.profit = item.profit;
    t.weight = item.weight;
    t.efficiency = item.efficiency;
    t.is_large = true;
    t.source_index = item.index;
    tilde.items.push_back(t);
  }
  // Band k (0-based) is represented by copies of (eps^2, eps^2 / e_{k+1});
  // with 1-based thresholds e_1..e_t this is eps_thresholds[k].
  for (std::size_t k = 0; k < eps_thresholds.size(); ++k) {
    const double e = eps_thresholds[k];
    if (!(e > 0.0)) {
      throw std::invalid_argument("construct_tilde: non-positive threshold");
    }
    TildeItem t;
    t.profit = eps2;
    t.weight = eps2 / e;
    t.efficiency = e;
    t.is_large = false;
    t.band = static_cast<int>(k);
    for (int c = 0; c < copies; ++c) tilde.items.push_back(t);
  }
  return tilde;
}

double solve_tilde_exact(const TildeInstance& tilde) {
  // Scale normalized reals onto a 10^9 integer grid; the rounding error per
  // item is 1e-9, negligible against the eps-scale guarantees.
  constexpr double kScale = 1e9;
  const auto capacity = static_cast<std::int64_t>(std::floor(tilde.capacity * kScale));
  std::vector<knapsack::Item> items;
  items.reserve(tilde.items.size());
  for (const auto& t : tilde.items) {
    knapsack::Item it;
    it.profit = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::llround(t.profit * kScale)));
    it.weight = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::llround(t.weight * kScale)));
    if (it.weight > capacity) continue;  // can never be selected
    items.push_back(it);
  }
  if (items.empty()) return 0.0;
  std::int64_t profit_sum = 0;
  for (const auto& it : items) profit_sum += it.profit;
  if (profit_sum <= 0) return 0.0;
  const knapsack::Instance instance(std::move(items), std::max<std::int64_t>(capacity, 0));
  const auto exact = knapsack::solve_exact(instance);
  return static_cast<double>(exact.solution.value) / kScale;
}

}  // namespace lcaknap::iky
