#ifndef LCAKNAP_IKY_PARTITION_H
#define LCAKNAP_IKY_PARTITION_H

#include <cstddef>
#include <vector>

#include "knapsack/instance.h"

/// \file partition.h
/// The three-way item partition of Section 4 ([IKY12]): for a parameter
/// eps, with profits normalized to total 1,
///
///   L(I) = { p > eps^2 }                      large items
///   S(I) = { p <= eps^2, p/w >= eps^2 }       small but efficient items
///   G(I) = { p <= eps^2, p/w <  eps^2 }       garbage items
///
/// The classification is a pure function of (normalized profit, normalized
/// efficiency, eps), so every replica computes it identically.

namespace lcaknap::iky {

enum class ItemClass { kLarge, kSmall, kGarbage };

/// Classifies one item given its normalized profit and efficiency.
/// Zero-weight items have infinite efficiency and are never garbage.
[[nodiscard]] constexpr ItemClass classify_item(double norm_profit, double efficiency,
                                                double eps) noexcept {
  const double eps2 = eps * eps;
  if (norm_profit > eps2) return ItemClass::kLarge;
  if (efficiency >= eps2) return ItemClass::kSmall;
  return ItemClass::kGarbage;
}

/// Full partition of a materialized instance (offline helper for tests,
/// benches and the EPS validity checker; LCAs never call this).
struct Partition {
  std::vector<std::size_t> large;
  std::vector<std::size_t> small;
  std::vector<std::size_t> garbage;

  /// Normalized profit mass of each class.
  double large_mass = 0.0;
  double small_mass = 0.0;
  double garbage_mass = 0.0;
};

[[nodiscard]] Partition partition_instance(const knapsack::Instance& instance,
                                           double eps);

}  // namespace lcaknap::iky

#endif  // LCAKNAP_IKY_PARTITION_H
