#ifndef LCAKNAP_IKY_CONSTRUCT_H
#define LCAKNAP_IKY_CONSTRUCT_H

#include <cstddef>
#include <span>
#include <vector>

/// \file construct.h
/// Step 3 of the Ĩ-construction algorithm (Section 4): from the collected
/// large items M and an (approximate) Equally Partitioning Sequence
/// ẽ_1 >= ... >= ẽ_t, build the constant-size instance Ĩ with
///
///   L(Ĩ) = M,
///   A_k(Ĩ) = floor(1/eps) copies of (eps^2, eps^2 / ẽ_{k+1}),  0 <= k < t,
///   G(Ĩ) = ∅,  capacity unchanged.
///
/// Everything here is in *normalized* units (total profit of I is 1).

namespace lcaknap::iky {

/// A large item as collected by weighted sampling: its index in the original
/// instance plus its normalized profile.
struct NormLargeItem {
  std::size_t index = 0;
  double profit = 0.0;      ///< normalized profit, in (eps^2, 1]
  double weight = 0.0;      ///< normalized weight
  double efficiency = 0.0;  ///< profit / weight (+inf for weight 0)
};

/// One item of the constructed instance Ĩ.
struct TildeItem {
  double profit = 0.0;
  double weight = 0.0;
  double efficiency = 0.0;
  bool is_large = false;
  /// Original-instance index for large items (undefined for representatives).
  std::size_t source_index = 0;
  /// Efficiency band for small representatives (-1 for large items).
  int band = -1;
};

struct TildeInstance {
  std::vector<TildeItem> items;
  double capacity = 0.0;  ///< normalized capacity K

  /// Total normalized profit of the large part L(Ĩ).
  [[nodiscard]] double large_profit() const;
};

/// Builds Ĩ.  `eps_thresholds` are normalized efficiency values (the EPS),
/// non-increasing; may be empty (then Ĩ consists of the large items only).
[[nodiscard]] TildeInstance construct_tilde(std::span<const NormLargeItem> large,
                                            std::span<const double> eps_thresholds,
                                            double eps, double norm_capacity);

/// Exact optimum value of Ĩ (normalized units), by scaling to integers and
/// running the exact referee.  Items heavier than the capacity are dropped
/// first (they cannot appear in any feasible solution).
[[nodiscard]] double solve_tilde_exact(const TildeInstance& tilde);

}  // namespace lcaknap::iky

#endif  // LCAKNAP_IKY_CONSTRUCT_H
