#include "iky/partition.h"

namespace lcaknap::iky {

Partition partition_instance(const knapsack::Instance& instance, double eps) {
  Partition part;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const double p = instance.norm_profit(i);
    switch (classify_item(p, instance.efficiency(i), eps)) {
      case ItemClass::kLarge:
        part.large.push_back(i);
        part.large_mass += p;
        break;
      case ItemClass::kSmall:
        part.small.push_back(i);
        part.small_mass += p;
        break;
      case ItemClass::kGarbage:
        part.garbage.push_back(i);
        part.garbage_mass += p;
        break;
    }
  }
  return part;
}

}  // namespace lcaknap::iky
