#include "iky/efficiency_domain.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lcaknap::iky {

EfficiencyDomain::EfficiencyDomain(int bits, int min_exp, int max_exp)
    : bits_(bits),
      size_(std::int64_t{1} << bits),
      lo_log2_(static_cast<double>(min_exp)),
      hi_log2_(static_cast<double>(max_exp)) {
  if (bits < 1 || bits > 48) {
    throw std::invalid_argument("EfficiencyDomain: bits must be in [1, 48]");
  }
  if (min_exp >= max_exp) {
    throw std::invalid_argument("EfficiencyDomain: min_exp must be < max_exp");
  }
}

std::int64_t EfficiencyDomain::to_grid(double efficiency) const noexcept {
  if (!(efficiency > 0.0)) return 0;
  if (std::isinf(efficiency)) return size_ - 1;
  const double position =
      (std::log2(efficiency) - lo_log2_) / (hi_log2_ - lo_log2_);
  const auto cell = static_cast<std::int64_t>(
      std::floor(position * static_cast<double>(size_)));
  return std::clamp<std::int64_t>(cell, 0, size_ - 1);
}

double EfficiencyDomain::from_grid(std::int64_t cell) const noexcept {
  const auto clamped = std::clamp<std::int64_t>(cell, 0, size_ - 1);
  const double width = (hi_log2_ - lo_log2_) / static_cast<double>(size_);
  // Geometric midpoint of the cell: exponent at (cell + 1/2) * width.
  const double exponent =
      lo_log2_ + (static_cast<double>(clamped) + 0.5) * width;
  return std::exp2(exponent);
}

}  // namespace lcaknap::iky
