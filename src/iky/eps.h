#ifndef LCAKNAP_IKY_EPS_H
#define LCAKNAP_IKY_EPS_H

#include <cstdint>
#include <span>
#include <vector>

#include "knapsack/instance.h"

/// \file eps.h
/// Equally Partitioning Sequences (Definition 4.3).  A non-increasing
/// sequence of efficiency thresholds e_1 >= ... >= e_t is an EPS for I when
/// every efficiency band of small items carries profit mass in
/// [eps, eps + eps^2) (the last band in [0, eps + eps^2)).
///
/// Two estimators are provided:
///  * `estimate_eps_grid` — plain empirical quantiles of profit-weighted
///    efficiency samples, the original [IKY12] route.  Fast, accurate, but
///    *not reproducible*: two runs produce slightly different thresholds.
///    LCA-KP's ablation mode uses it to demonstrate the consistency failure
///    the paper identifies in Section 1.1.
///  * the reproducible route lives in core/lca_kp.cpp and calls
///    reproducible::rquantile instead — same targets, identical outputs
///    across replicas with high probability.

namespace lcaknap::iky {

/// Plain (non-reproducible) empirical (1 - k*q)-quantiles for k = 1..t over
/// grid-mapped efficiency samples.  Returns t thresholds, non-increasing.
[[nodiscard]] std::vector<std::int64_t> estimate_eps_grid(
    std::span<const std::int64_t> efficiency_grid_samples, double q, int t);

/// Exact offline EPS: walks the small items by decreasing efficiency and
/// cuts a threshold whenever ~eps of profit mass has accumulated.  This is
/// the ground-truth sequence sampled estimators approximate; used by tests
/// and benches as the reference.  May return fewer thresholds than an
/// estimator would when efficiency atoms exceed eps (see DESIGN.md, finding
/// F2).
[[nodiscard]] std::vector<double> exact_eps(const knapsack::Instance& instance,
                                            double eps);

/// Offline EPS validity check against a fully known instance (Definition
/// 4.3), used by tests and benches.  `thresholds` are normalized efficiency
/// values, non-increasing.  `slack` loosens the band bounds to absorb
/// sampling error: bands must lie in [eps - slack, eps + eps^2 + slack).
struct EpsValidity {
  bool valid = false;
  /// Profit mass of band k (band 0 = efficiencies >= e_1; band k in
  /// [e_{k+1}, e_k); band t = below e_t), over small items only.
  std::vector<double> band_masses;
};
[[nodiscard]] EpsValidity check_eps(const knapsack::Instance& instance,
                                    std::span<const double> thresholds, double eps,
                                    double slack = 0.0);

}  // namespace lcaknap::iky

#endif  // LCAKNAP_IKY_EPS_H
