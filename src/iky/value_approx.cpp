#include "iky/value_approx.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "iky/construct.h"
#include "iky/eps.h"
#include "iky/partition.h"
#include "util/flat_index_map.h"

namespace lcaknap::iky {

std::size_t coupon_collector_samples(double delta, int amplification) {
  if (!(delta > 0.0 && delta < 1.0)) {
    throw std::invalid_argument("coupon_collector_samples: delta must be in (0, 1)");
  }
  if (amplification < 1) {
    throw std::invalid_argument("coupon_collector_samples: amplification must be >= 1");
  }
  const double base = 6.0 / delta * (std::log(1.0 / delta) + 1.0);
  return static_cast<std::size_t>(std::ceil(base)) *
         static_cast<std::size_t>(amplification);
}

namespace {

/// Draws `count` weighted samples, keeping the distinct large items.
std::vector<NormLargeItem> collect_large(const oracle::InstanceAccess& access,
                                         std::size_t count, double eps,
                                         util::Xoshiro256& rng) {
  const double eps2 = eps * eps;
  util::FlatIndexMap<NormLargeItem> found(64);
  for (std::size_t s = 0; s < count; ++s) {
    const auto draw = access.weighted_sample(rng);
    const double p = access.norm_profit(draw.item);
    if (p <= eps2) continue;
    NormLargeItem rec;
    rec.index = draw.index;
    rec.profit = p;
    rec.weight = access.norm_weight(draw.item);
    rec.efficiency = access.efficiency(draw.item);
    found.emplace(draw.index, rec);
  }
  std::vector<NormLargeItem> large;
  const auto entries = found.extract_sorted();
  large.reserve(entries.size());
  for (const auto& [index, rec] : entries) large.push_back(rec);
  return large;
}

/// The quantile values `values[rank]` (as if sorted ascending) for each rank
/// in `ranks`, without fully sorting: ranks are visited in increasing order
/// and selected with nth_element over the not-yet-partitioned suffix, so the
/// returned values are exactly the sorted-array reads of the previous
/// implementation at O(n) average instead of O(n log n).  `ranks` must be
/// sorted ascending; `out[i]` corresponds to `ranks[i]`.
void select_ranks(std::vector<double>& values, const std::vector<std::size_t>& ranks,
                  std::vector<double>& out) {
  out.clear();
  out.reserve(ranks.size());
  std::size_t partitioned = 0;  // values[0, partitioned) are in final position
  for (const std::size_t rank : ranks) {
    if (rank >= partitioned) {
      std::nth_element(values.begin() + static_cast<std::ptrdiff_t>(partitioned),
                       values.begin() + static_cast<std::ptrdiff_t>(rank),
                       values.end());
      partitioned = rank + 1;
    }
    out.push_back(values[rank]);
  }
}

}  // namespace

ValueApproxResult approximate_opt_value(const oracle::InstanceAccess& access,
                                        const ValueApproxConfig& config,
                                        util::Xoshiro256& rng) {
  const double eps = config.eps;
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("approximate_opt_value: eps must be in (0, 1)");
  }
  const std::uint64_t samples_before = access.sample_count();

  // Step 1: collect the large items (Lemma 4.2 with delta = eps^2).
  const std::size_t m = config.large_samples > 0
                            ? config.large_samples
                            : coupon_collector_samples(eps * eps);
  const auto large = collect_large(access, m, eps, rng);
  double large_mass = 0.0;
  for (const auto& item : large) large_mass += item.profit;

  // Step 2: learn the efficiency quantiles of the small/garbage mass.
  std::vector<double> thresholds;
  if (1.0 - large_mass >= eps) {
    const double q = (eps + eps * eps / 2.0) / (1.0 - large_mass);
    const int t = static_cast<int>(std::floor(1.0 / q));
    const std::size_t want =
        config.quantile_samples > 0
            ? config.quantile_samples
            : static_cast<std::size_t>(
                  std::ceil(4.0 / std::pow(eps, 4) * std::log(1.0 / eps)));
    std::vector<double> efficiencies;
    efficiencies.reserve(want);
    const double eps2 = eps * eps;
    for (std::size_t s = 0; s < want; ++s) {
      const auto draw = access.weighted_sample(rng);
      if (access.norm_profit(draw.item) > eps2) continue;  // drop large items
      efficiencies.push_back(access.efficiency(draw.item));
    }
    if (!efficiencies.empty() && t >= 1) {
      // Only t quantiles of the sample are ever consumed, so select them
      // instead of sorting all of it.  The ranks decrease with k; visit them
      // ascending and read out in k order.
      const auto n = static_cast<double>(efficiencies.size());
      std::vector<std::size_t> ranks;
      ranks.reserve(static_cast<std::size_t>(t));
      for (int k = 1; k <= t; ++k) {
        const double p = std::max(0.0, 1.0 - static_cast<double>(k) * q);
        auto idx = static_cast<std::size_t>(std::ceil(p * n));
        if (idx > 0) --idx;
        idx = std::min(idx, efficiencies.size() - 1);
        ranks.push_back(idx);
      }
      std::vector<std::size_t> ascending(ranks.rbegin(), ranks.rend());
      std::vector<double> selected;
      select_ranks(efficiencies, ascending, selected);
      for (int k = 1; k <= t; ++k) {
        thresholds.push_back(selected[static_cast<std::size_t>(t - k)]);
      }
      // Enforce non-increasing order (ties can perturb it at the tail).
      for (std::size_t k = 1; k < thresholds.size(); ++k) {
        thresholds[k] = std::min(thresholds[k], thresholds[k - 1]);
      }
      // Drop the final threshold when it dips below the small-item floor
      // (Algorithm 2, lines 11-14).
      if (!thresholds.empty() && thresholds.back() < eps2) thresholds.pop_back();
      // Guard: representatives need positive efficiency.
      while (!thresholds.empty() && !(thresholds.back() > 0.0)) thresholds.pop_back();
    }
  }

  // Step 3: build and solve Ĩ.
  const TildeInstance tilde =
      construct_tilde(large, thresholds, eps, access.norm_capacity());
  ValueApproxResult result;
  result.estimate = std::max(0.0, solve_tilde_exact(tilde) - eps);
  result.samples_used = access.sample_count() - samples_before;
  result.tilde_size = tilde.items.size();
  return result;
}

}  // namespace lcaknap::iky
