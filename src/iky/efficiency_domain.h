#ifndef LCAKNAP_IKY_EFFICIENCY_DOMAIN_H
#define LCAKNAP_IKY_EFFICIENCY_DOMAIN_H

#include <cstdint>

/// \file efficiency_domain.h
/// The finite ordered efficiency domain X of Section 4.2.
///
/// The paper notes that with poly(n)-bit integer inputs, normalized
/// efficiencies live in a known finite domain of size 2^poly(n); the
/// reproducible median then pays only a log* |X| factor.  We realise X as a
/// logarithmically-spaced grid of 2^bits cells over a fixed efficiency range:
/// the map is deterministic and monotone, so (a) every replica maps the same
/// efficiency to the same cell, and (b) quantiles commute with the map.  The
/// grid resolution (bits, i.e. log |X|) is the knob bench E8 sweeps to expose
/// the domain-size dependence of the reproducible machinery.

namespace lcaknap::iky {

class EfficiencyDomain {
 public:
  /// Grid of 2^bits cells over normalized efficiencies
  /// [2^min_exp, 2^max_exp]; values outside clamp to the ends.
  /// bits must be in [1, 48].
  explicit EfficiencyDomain(int bits = 20, int min_exp = -30, int max_exp = 30);

  [[nodiscard]] std::int64_t size() const noexcept { return size_; }
  [[nodiscard]] int bits() const noexcept { return bits_; }

  /// Monotone map: normalized efficiency -> grid cell in [0, size).
  /// Non-positive efficiencies map to 0; +infinity maps to size - 1.
  [[nodiscard]] std::int64_t to_grid(double efficiency) const noexcept;

  /// Representative efficiency of a cell (its geometric midpoint).
  /// Round-trip stable: to_grid(from_grid(g)) == g for every valid g.
  [[nodiscard]] double from_grid(std::int64_t cell) const noexcept;

 private:
  int bits_;
  std::int64_t size_;
  double lo_log2_;
  double hi_log2_;
};

}  // namespace lcaknap::iky

#endif  // LCAKNAP_IKY_EFFICIENCY_DOMAIN_H
