#ifndef LCAKNAP_IKY_VALUE_APPROX_H
#define LCAKNAP_IKY_VALUE_APPROX_H

#include <cstddef>
#include <cstdint>

#include "oracle/access.h"
#include "util/rng.h"

/// \file value_approx.h
/// The [IKY12] constant-time approximation of the optimal Knapsack *value*
/// (Lemma 4.4): sample large items by coupon collection (Lemma 4.2), learn an
/// equally partitioning sequence from profit-weighted efficiency samples,
/// build the constant-size instance Ĩ, solve it exactly, and report
/// OPT(Ĩ) - eps, which is a (1, 6*eps)-approximation of OPT(I) with high
/// probability.  The query cost is independent of n.
///
/// This is the paper's starting point (Section 1.1, "technical overview");
/// LCA-KP reuses all of its pieces but replaces the quantile estimation with
/// the reproducible version.

namespace lcaknap::iky {

struct ValueApproxConfig {
  double eps = 0.2;
  /// Weighted samples used to collect the large items; 0 = auto from
  /// Lemma 4.2 with amplification.
  std::size_t large_samples = 0;
  /// Weighted samples used for the efficiency quantiles; 0 = auto
  /// (a calibrated multiple of 1/eps^4 * log(1/eps)).
  std::size_t quantile_samples = 0;
};

struct ValueApproxResult {
  /// Estimated optimal value in normalized units (fraction of total profit).
  double estimate = 0.0;
  /// Weighted samples actually drawn (== the oracle access cost).
  std::uint64_t samples_used = 0;
  /// Items in the constructed instance Ĩ.
  std::size_t tilde_size = 0;
};

/// Lemma 4.2 sample size: ceil(6/delta * (ln(1/delta) + 1)) draws see every
/// item of profit >= delta with probability >= 5/6; `amplification` repeats
/// the budget to push the success probability up.
[[nodiscard]] std::size_t coupon_collector_samples(double delta, int amplification = 3);

/// Runs the approximation against a (counted) access object using fresh
/// sampling randomness from `rng`.
[[nodiscard]] ValueApproxResult approximate_opt_value(
    const oracle::InstanceAccess& access, const ValueApproxConfig& config,
    util::Xoshiro256& rng);

}  // namespace lcaknap::iky

#endif  // LCAKNAP_IKY_VALUE_APPROX_H
