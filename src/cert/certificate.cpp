#include "cert/certificate.h"

#include <algorithm>

namespace lcaknap::cert {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

[[nodiscard]] std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[at + i]))
         << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

const char* case_tag_name(CaseTag tag) noexcept {
  switch (tag) {
    case CaseTag::kLargeHit:
      return "large-hit";
    case CaseTag::kLargeMiss:
      return "large-miss";
    case CaseTag::kSmallAccept:
      return "small-accept";
    case CaseTag::kSmallReject:
      return "small-reject";
  }
  return "unknown";
}

std::int32_t active_threshold_index(const core::LcaKpRun& run) noexcept {
  if (run.e_small_grid < 0) return -1;
  const auto& grid = run.thresholds_grid;
  const auto it = std::find(grid.begin(), grid.end(), run.e_small_grid);
  if (it == grid.end()) return -1;
  return static_cast<std::int32_t>(it - grid.begin());
}

void encode_record_to(char* out, const CertRecord& record) noexcept {
  const auto store_u32 = [](char* at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) at[i] = static_cast<char>(v >> (8 * i));
  };
  const auto store_u64 = [](char* at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) at[i] = static_cast<char>(v >> (8 * i));
  };
  store_u64(out + 0, record.seq);
  store_u64(out + 8, record.item);
  store_u64(out + 16, static_cast<std::uint64_t>(record.profit));
  store_u64(out + 24, static_cast<std::uint64_t>(record.weight));
  out[32] = static_cast<char>(record.case_tag);
  out[33] = static_cast<char>(record.answer ? 1 : 0);
  out[34] = 0;  // reserved
  out[35] = 0;  // reserved
  store_u32(out + 36, static_cast<std::uint32_t>(record.threshold_idx));
  store_u64(out + 40,
            store::crc64(std::string_view(out, kCertRecordBytes - 8)));
}

void encode_record(std::string& out, const CertRecord& record) {
  char bytes[kCertRecordBytes];
  encode_record_to(bytes, record);
  out.append(bytes, kCertRecordBytes);
}

CertRecord decode_record(std::string_view bytes) {
  if (bytes.size() < kCertRecordBytes) {
    throw CertTruncated("certificate: record shorter than " +
                        std::to_string(kCertRecordBytes) + " bytes");
  }
  if (bytes.size() > kCertRecordBytes) {
    throw CertCorrupt("certificate: record longer than the fixed size");
  }
  const std::uint64_t stored = get_u64(bytes, kCertRecordBytes - 8);
  const std::uint64_t computed =
      store::crc64(bytes.substr(0, kCertRecordBytes - 8));
  if (stored != computed) {
    throw CertCorrupt("certificate: record CRC64 mismatch");
  }
  CertRecord record;
  record.seq = get_u64(bytes, 0);
  record.item = get_u64(bytes, 8);
  record.profit = static_cast<std::int64_t>(get_u64(bytes, 16));
  record.weight = static_cast<std::int64_t>(get_u64(bytes, 24));
  const auto tag = static_cast<std::uint8_t>(bytes[32]);
  if (tag >= kCaseTagCount) {
    throw CertCorrupt("certificate: unknown case tag " + std::to_string(tag));
  }
  record.case_tag = static_cast<CaseTag>(tag);
  const auto answer = static_cast<std::uint8_t>(bytes[33]);
  if (answer > 1) {
    throw CertCorrupt("certificate: non-boolean answer byte");
  }
  record.answer = answer != 0;
  if (bytes[34] != 0 || bytes[35] != 0) {
    throw CertCorrupt("certificate: nonzero reserved bytes");
  }
  record.threshold_idx = static_cast<std::int32_t>(get_u32(bytes, 36));
  return record;
}

void encode_header(std::string& out,
                   const store::SnapshotFingerprint& fingerprint) {
  const std::size_t start = out.size();
  out.append(kCertMagic, sizeof(kCertMagic));
  put_u32(out, kCertVersion);
  put_u32(out, static_cast<std::uint32_t>(kCertRecordBytes));
  store::encode_fingerprint(out, fingerprint);
  put_u64(out, store::crc64(std::string_view(out).substr(start)));
}

store::SnapshotFingerprint decode_header(std::string_view bytes) {
  if (bytes.size() < kCertHeaderBytes) {
    throw CertTruncated("certificate: segment shorter than any valid header");
  }
  const std::uint64_t stored = get_u64(bytes, kCertHeaderBytes - 8);
  const std::uint64_t computed =
      store::crc64(bytes.substr(0, kCertHeaderBytes - 8));
  if (stored != computed) {
    throw CertCorrupt("certificate: header CRC64 mismatch");
  }
  for (std::size_t i = 0; i < sizeof(kCertMagic); ++i) {
    if (bytes[i] != kCertMagic[i]) {
      throw CertCorrupt("certificate: bad magic");
    }
  }
  if (const auto version = get_u32(bytes, 8); version != kCertVersion) {
    throw CertCorrupt("certificate: unsupported format version " +
                      std::to_string(version));
  }
  if (const auto record_bytes = get_u32(bytes, 12);
      record_bytes != kCertRecordBytes) {
    throw CertCorrupt("certificate: unexpected record size " +
                      std::to_string(record_bytes));
  }
  try {
    return store::decode_fingerprint(
        bytes.substr(16, store::kFingerprintBytes));
  } catch (const store::SnapshotError& e) {
    // The CRC already passed, so a malformed fingerprint is a writer bug,
    // but it must still surface as this format's taxonomy.
    throw CertCorrupt(std::string("certificate: bad fingerprint block: ") +
                      e.what());
  }
}

}  // namespace lcaknap::cert
