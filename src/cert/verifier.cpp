#include "cert/verifier.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>

#include "cert/cert_log.h"

namespace lcaknap::cert {

const char* reject_reason_name(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kTruncated:
      return "truncated";
    case RejectReason::kCorrupt:
      return "corrupt";
    case RejectReason::kFingerprintMismatch:
      return "fingerprint-mismatch";
    case RejectReason::kWitnessInvariant:
      return "witness-invariant";
    case RejectReason::kCaseMismatch:
      return "case-mismatch";
    case RejectReason::kThresholdMismatch:
      return "threshold-mismatch";
    case RejectReason::kAnswerMismatch:
      return "answer-mismatch";
    case RejectReason::kSequence:
      return "sequence";
  }
  return "unknown";
}

LogVerifier::LogVerifier(const store::SnapshotFingerprint& fingerprint,
                         const core::LcaKpRun& run,
                         const VerifierConfig& config,
                         metrics::Registry& registry)
    : fingerprint_(fingerprint),
      run_(run),
      config_(config),
      // The same grid LcaKp builds from its config: the fingerprint pins
      // domain_bits, and the range exponents are format constants.
      domain_(static_cast<int>(fingerprint.domain_bits)),
      eps2_(fingerprint.eps * fingerprint.eps),
      threshold_idx_(active_threshold_index(run)),
      verified_total_(&registry.counter(
          "cert_records_verified_total",
          "Certificate records that passed every verification check")),
      verify_latency_us_(&registry.histogram(
          "cert_verify_latency_us",
          "Wall time of one certificate-log verification pass in microseconds",
          metrics::Histogram::exponential_buckets(1.0, 2.0, 24))) {
  for (int r = 0; r < kRejectReasonCount; ++r) {
    rejected_total_[static_cast<std::size_t>(r)] = &registry.counter(
        "cert_records_rejected_total",
        "Certificate records (or whole segments) rejected by the verifier",
        {{"reason", reject_reason_name(static_cast<RejectReason>(r))}});
  }
}

void LogVerifier::reject(VerifyReport& report, RejectReason reason,
                         const std::string& detail) const {
  ++report.rejected;
  ++report.by_reason[static_cast<std::size_t>(reason)];
  rejected_total_[static_cast<std::size_t>(reason)]->inc();
  if (report.examples.size() < config_.max_examples) {
    report.examples.push_back(std::string(reject_reason_name(reason)) + ": " +
                              detail);
  }
}

std::optional<RejectReason> LogVerifier::check_record(
    const CertRecord& record) const {
  // 1. Witness invariants — the offline mirror of fault::VerifyingAccess.
  //    ChaosAccess corruption is wrong-but-well-formed and always violates
  //    one of these, so everything the online guard flags dies here too.
  if (record.item >= fingerprint_.n) return RejectReason::kWitnessInvariant;
  if (record.profit < 0 || record.profit > fingerprint_.total_profit) {
    return RejectReason::kWitnessInvariant;
  }
  if (record.weight < 0 || record.weight > fingerprint_.total_weight) {
    return RejectReason::kWitnessInvariant;
  }
  if (record.weight > fingerprint_.capacity) {
    return RejectReason::kWitnessInvariant;
  }
  // 2. Case: the recorded branch must match norm_profit vs eps^2, and the
  //    tag's implied answer must match the recorded answer bit.
  const double norm_profit = static_cast<double>(record.profit) /
                             static_cast<double>(fingerprint_.total_profit);
  const bool large = norm_profit > eps2_;
  const bool recorded_large = record.case_tag == CaseTag::kLargeHit ||
                              record.case_tag == CaseTag::kLargeMiss;
  if (large != recorded_large) return RejectReason::kCaseMismatch;
  const bool tag_answer = record.case_tag == CaseTag::kLargeHit ||
                          record.case_tag == CaseTag::kSmallAccept;
  if (tag_answer != record.answer) return RejectReason::kCaseMismatch;
  // 3. Threshold echo: small-branch records must point at the snapshot's
  //    active EPS threshold; large-branch records carry -1.
  const std::int32_t expected_idx = large ? -1 : threshold_idx_;
  if (record.threshold_idx != expected_idx) {
    return RejectReason::kThresholdMismatch;
  }
  // 4. The answer itself, re-derived with LcaKp::decide's exact arithmetic
  //    (lines 20-24 of Algorithm 2) — zero oracle access.
  bool answer = false;
  if (large) {
    answer = run_.index_large.contains(static_cast<std::size_t>(record.item));
  } else {
    const double efficiency =
        record.weight == 0
            ? std::numeric_limits<double>::infinity()
            : norm_profit / (static_cast<double>(record.weight) /
                             static_cast<double>(fingerprint_.total_weight));
    answer = run_.e_small_grid >= 0 &&
             domain_.to_grid(efficiency) >= run_.e_small_grid;
  }
  if (answer != record.answer) return RejectReason::kAnswerMismatch;
  return std::nullopt;
}

void LogVerifier::verify_segment(std::string_view bytes, VerifyReport& report,
                                 std::int64_t& last_seq) const {
  ++report.segments;
  try {
    const auto header = bytes.substr(0, std::min(bytes.size(), kCertHeaderBytes));
    const store::SnapshotFingerprint fp = decode_header(header);
    if (!fp.equals(fingerprint_)) {
      reject(report, RejectReason::kFingerprintMismatch,
             "segment header pins a different serving context than the "
             "snapshot");
      return;
    }
  } catch (const CertTruncated& e) {
    reject(report, RejectReason::kTruncated, e.what());
    return;
  } catch (const CertCorrupt& e) {
    reject(report, RejectReason::kCorrupt, e.what());
    return;
  }

  const std::uint64_t sample_every = std::max<std::uint64_t>(
      1, config_.sample_every);
  for (std::size_t pos = kCertHeaderBytes; pos < bytes.size();
       pos += kCertRecordBytes) {
    if (bytes.size() - pos < kCertRecordBytes) {
      reject(report, RejectReason::kTruncated,
             "trailing partial record (" +
                 std::to_string(bytes.size() - pos) + " bytes)");
      return;
    }
    CertRecord record;
    try {
      record = decode_record(bytes.substr(pos, kCertRecordBytes));
    } catch (const CertError& e) {
      // Fixed-size records: resynchronize at the next record boundary.
      reject(report, RejectReason::kCorrupt, e.what());
      continue;
    }
    ++report.records;
    if (static_cast<std::int64_t>(record.seq) <= last_seq) {
      reject(report, RejectReason::kSequence,
             "seq " + std::to_string(record.seq) + " after " +
                 std::to_string(last_seq));
      continue;
    }
    last_seq = static_cast<std::int64_t>(record.seq);
    if ((report.records - 1) % sample_every == 0) {
      ++report.records_checked;
      if (const auto reason = check_record(record)) {
        reject(report, *reason,
               "seq " + std::to_string(record.seq) + " item " +
                   std::to_string(record.item) + " (" +
                   case_tag_name(record.case_tag) + ")");
        continue;
      }
    }
    ++report.accepted;
    verified_total_->inc();
  }
}

void LogVerifier::verify_file(const std::string& path, VerifyReport& report,
                              std::int64_t& last_seq) const {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw CertIoError("certificate: cannot open " + path);
  std::string bytes;
  is.seekg(0, std::ios::end);
  const auto size = is.tellg();
  if (size < 0) throw CertIoError("certificate: cannot stat " + path);
  bytes.resize(static_cast<std::size_t>(size));
  is.seekg(0, std::ios::beg);
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!is.good() && !is.eof()) {
    throw CertIoError("certificate: read error on " + path);
  }
  verify_segment(bytes, report, last_seq);
}

VerifyReport LogVerifier::verify_path(const std::string& path) const {
  VerifyReport report;
  std::int64_t last_seq = -1;
  const auto t0 = std::chrono::steady_clock::now();
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    for (const auto& segment : CertLog::list_segments(path)) {
      verify_file(segment, report, last_seq);
    }
  } else {
    verify_file(path, report, last_seq);
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  report.seconds = us / 1e6;
  verify_latency_us_->observe(us);
  return report;
}

}  // namespace lcaknap::cert
