#ifndef LCAKNAP_CERT_VERIFIER_H
#define LCAKNAP_CERT_VERIFIER_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cert/certificate.h"
#include "core/lca_kp.h"
#include "iky/efficiency_domain.h"
#include "metrics/metrics.h"
#include "store/snapshot.h"

/// \file verifier.h
/// Offline certificate-log auditor: replays a log against a warm-state
/// snapshot and re-derives every answer with ZERO oracle access.
///
/// The verifier holds only (a) the snapshot's fingerprint — which pins the
/// instance metadata (n, totals, capacity), eps, the shared seed, the grid
/// resolution, and the tape-seed echo — and (b) the snapshot's `LcaKpRun`
/// payload `(L(Ĩ), EPS)`.  From those it reconstructs the exact membership
/// arithmetic of `LcaKp::decide` (same doubles, same grid map) and checks,
/// per record:
///
///   1. structure: record CRC, case tag, reserved bytes (decode_record);
///   2. witness invariants — the same free-metadata checks
///      `fault::VerifyingAccess` applies online: index < n, profit in
///      [0, total_profit], weight in [0, total_weight], weight <= capacity.
///      `fault::ChaosAccess` corruption is wrong-but-well-formed and always
///      violates one of these, so any corrupted witness that the online
///      guard would flag is also rejected offline (the chaos drill in
///      tests/cert pins this at 100%);
///   3. case consistency: the recorded branch matches norm_profit vs eps^2;
///   4. threshold echo: the recorded EPS-payload index matches the active
///      small-item threshold of the snapshot's run;
///   5. the answer itself: re-derived from (L(Ĩ), EPS) and the witness;
///   6. sequence: strictly increasing across records and segments.
///
/// Sampling (`sample_every = K`) applies to the semantic checks (2-5);
/// structural CRC checks always run — they are what makes sampled auditing
/// sound against bit rot.  See docs/CERTIFICATES.md for the runbook.

namespace lcaknap::cert {

/// Typed per-record / per-segment rejection taxonomy.
enum class RejectReason : std::uint8_t {
  kTruncated = 0,           ///< segment/record shorter than declared shape
  kCorrupt = 1,             ///< CRC, magic, version, or structure failure
  kFingerprintMismatch = 2, ///< segment header disagrees with the snapshot
  kWitnessInvariant = 3,    ///< witness violates the free-metadata invariants
  kCaseMismatch = 4,        ///< recorded branch disagrees with the witness
  kThresholdMismatch = 5,   ///< recorded EPS index disagrees with the run
  kAnswerMismatch = 6,      ///< re-derived answer disagrees with the record
  kSequence = 7,            ///< sequence numbers not strictly increasing
};
inline constexpr int kRejectReasonCount = 8;

[[nodiscard]] const char* reject_reason_name(RejectReason reason) noexcept;

struct VerifierConfig {
  /// Semantic-check sampling rate: re-derive every Kth record's answer
  /// (1 = every record; 0 behaves as 1).  Structure is always checked.
  std::uint64_t sample_every = 1;
  /// Keep at most this many human-readable rejection examples.
  std::size_t max_examples = 8;
};

struct VerifyReport {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;          ///< records present (structurally)
  std::uint64_t records_checked = 0;  ///< records semantically re-derived
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;  ///< rejected records + rejected segments
  std::array<std::uint64_t, kRejectReasonCount> by_reason{};
  std::vector<std::string> examples;
  double seconds = 0.0;

  /// True iff every segment parsed and every checked record verified.
  [[nodiscard]] bool clean() const noexcept { return rejected == 0; }
};

class LogVerifier {
 public:
  /// `fingerprint`/`run` are the snapshot's contents (`store::read_snapshot`
  /// with a non-null `actual`); copied, so the verifier is self-contained.
  LogVerifier(const store::SnapshotFingerprint& fingerprint,
              const core::LcaKpRun& run, const VerifierConfig& config = {},
              metrics::Registry& registry = metrics::global_registry());

  /// Semantic checks (2-5 above) on one structurally-valid record.
  /// nullopt = the record verifies.
  [[nodiscard]] std::optional<RejectReason> check_record(
      const CertRecord& record) const;

  /// Verifies one segment buffer (header + records), accumulating into
  /// `report`.  Never throws on bad input — every failure is typed into the
  /// report.  `last_seq` carries the strictly-increasing sequence check
  /// across segments (pass -1 to start).
  void verify_segment(std::string_view bytes, VerifyReport& report,
                      std::int64_t& last_seq) const;

  /// Verifies one segment file.  Throws CertIoError only when the file
  /// cannot be read at all.
  void verify_file(const std::string& path, VerifyReport& report,
                   std::int64_t& last_seq) const;

  /// Verifies a whole log: `path` is either one segment file or a directory
  /// of segments (replayed in `CertLog::list_segments` order).  Timing and
  /// the `cert_*` verification metrics are recorded here.
  [[nodiscard]] VerifyReport verify_path(const std::string& path) const;

  [[nodiscard]] const VerifierConfig& config() const noexcept { return config_; }

 private:
  void reject(VerifyReport& report, RejectReason reason,
              const std::string& detail) const;

  store::SnapshotFingerprint fingerprint_;
  core::LcaKpRun run_;
  VerifierConfig config_;
  iky::EfficiencyDomain domain_;
  double eps2_ = 0.0;
  std::int32_t threshold_idx_ = -1;

  metrics::Counter* verified_total_;
  std::array<metrics::Counter*, kRejectReasonCount> rejected_total_{};
  metrics::Histogram* verify_latency_us_;
};

}  // namespace lcaknap::cert

#endif  // LCAKNAP_CERT_VERIFIER_H
