#ifndef LCAKNAP_CERT_CERTIFICATE_H
#define LCAKNAP_CERT_CERTIFICATE_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/lca_kp.h"
#include "store/snapshot.h"

/// \file certificate.h
/// The per-answer certificate record and the certificate log's binary format.
///
/// Every LCA-KP answer is a pure function of the warm state `(L(Ĩ), EPS)`
/// and the queried item (Lemma 4.9); the full justification of one answer is
/// therefore tiny: the item contents as witnessed at evaluation time, which
/// branch of the membership rule (Algorithm 2, lines 20-24) fired, and which
/// EPS threshold was active.  A `CertRecord` serializes exactly that claim,
/// sealed per record with the same CRC-64/XZ the snapshot format uses, so an
/// independent auditor holding only the log and the warm-state snapshot can
/// re-derive every answer *without any oracle access* (src/cert/verifier.h)
/// — Definition 2.3 consistency as an offline-checkable proof obligation
/// instead of a trusted property.  See docs/CERTIFICATES.md.
///
/// Segment layout (all integers little-endian, no padding):
///
///   header:  magic "LCAKCERT" | u32 version | u32 record_bytes
///            | fingerprint block (store::kFingerprintBytes, the snapshot
///              encoding verbatim — includes the tape-seed echo)
///            | u64 CRC-64/XZ over every preceding header byte
///   records: fixed-size `kCertRecordBytes` records, each CRC-sealed
///
/// Fixed-size records make sampled auditing (`--sample=K`) an O(1) seek per
/// probe and let a verifier resynchronize past a corrupt record.

namespace lcaknap::cert {

// --- error taxonomy ----------------------------------------------------------

/// Base of every certificate-format failure.
class CertError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// Fewer bytes than the structure (header or record) requires.
class CertTruncated final : public CertError {
  using CertError::CertError;
};
/// Bad magic, unsupported version, failed CRC, unknown case tag, or
/// non-canonical field contents.
class CertCorrupt final : public CertError {
  using CertError::CertError;
};
/// The log could not be read or written at all (missing file, permissions).
class CertIoError final : public CertError {
  using CertError::CertError;
};

// --- case tags ---------------------------------------------------------------

/// Which branch of the membership rule produced the answer (Algorithm 2,
/// lines 20-24).  Large = norm_profit > eps^2 (greedy-prefix / singleton
/// territory); small = the efficiency-threshold rule.
enum class CaseTag : std::uint8_t {
  kLargeHit = 0,     ///< large item, in L(Ĩ) -> yes
  kLargeMiss = 1,    ///< large item, not in L(Ĩ) -> no
  kSmallAccept = 2,  ///< small item, grid efficiency >= e_small -> yes
  kSmallReject = 3,  ///< small item, below threshold or no small rule -> no
};
inline constexpr int kCaseTagCount = 4;

[[nodiscard]] const char* case_tag_name(CaseTag tag) noexcept;

/// Derives the case tag from an evaluation witness.
[[nodiscard]] constexpr CaseTag case_of(
    const core::LcaKp::AnswerWitness& witness) noexcept {
  if (witness.large) {
    return witness.answer ? CaseTag::kLargeHit : CaseTag::kLargeMiss;
  }
  return witness.answer ? CaseTag::kSmallAccept : CaseTag::kSmallReject;
}

/// Index into the run's sorted EPS threshold payload (`thresholds_grid`) of
/// the active small-item threshold `e_small_grid`, or -1 when the run has no
/// small-item rule (or the active threshold is not one of the EPS values —
/// canonically impossible, and the verifier rejects records claiming it).
[[nodiscard]] std::int32_t active_threshold_index(
    const core::LcaKpRun& run) noexcept;

// --- record ------------------------------------------------------------------

/// One certified answer.  `seq` is assigned by the writer and is strictly
/// increasing across the whole log (across segment rotations), so replay
/// order and completeness are checkable.
struct CertRecord {
  std::uint64_t seq = 0;          ///< query id (log-wide, strictly increasing)
  std::uint64_t item = 0;         ///< queried item index
  std::int64_t profit = 0;        ///< item profit as witnessed at evaluation
  std::int64_t weight = 0;        ///< item weight as witnessed at evaluation
  CaseTag case_tag = CaseTag::kSmallReject;
  bool answer = false;
  /// Index of the active small-item threshold in the snapshot's sorted EPS
  /// payload; -1 for large-branch records.
  std::int32_t threshold_idx = -1;

  friend bool operator==(const CertRecord&, const CertRecord&) = default;
};

inline constexpr char kCertMagic[8] = {'L', 'C', 'A', 'K', 'C', 'E', 'R', 'T'};
/// Version 2: the embedded fingerprint block grew an epoch id (snapshot
/// format v2); version-1 segments have a shorter header and are rejected by
/// the version check, never misparsed.
inline constexpr std::uint32_t kCertVersion = 2;

/// seq + item + profit + weight + (case, answer, 2 reserved) + threshold_idx
/// + record CRC.
inline constexpr std::size_t kCertRecordBytes = 8 + 8 + 8 + 8 + 4 + 4 + 8;
/// magic + version + record_bytes + fingerprint block + header CRC.
inline constexpr std::size_t kCertHeaderBytes =
    8 + 4 + 4 + store::kFingerprintBytes + 8;

/// Writes the canonical encoding of `record` into `out`, which must have
/// room for exactly `kCertRecordBytes` bytes.  Allocation-free — this is the
/// serving hot path (`CertLog::append` holds its mutex across the encode).
void encode_record_to(char* out, const CertRecord& record) noexcept;

/// Appends the canonical encoding of `record` (exactly `kCertRecordBytes`
/// bytes, CRC-sealed) to `out`.  Canonical: equal records encode to equal
/// bytes (fixed widths, reserved bytes zero), so records can be compared or
/// content-addressed as raw bytes.
void encode_record(std::string& out, const CertRecord& record);

/// Decodes and validates one record (CRC first, then structure).  Throws
/// CertTruncated / CertCorrupt; never returns a partially-filled record.
[[nodiscard]] CertRecord decode_record(std::string_view bytes);

/// Appends the canonical segment header for `fingerprint` to `out`.
void encode_header(std::string& out, const store::SnapshotFingerprint& fingerprint);

/// Decodes and validates a segment header (size, CRC, magic, version,
/// record size, fingerprint structure).  Throws CertTruncated / CertCorrupt.
[[nodiscard]] store::SnapshotFingerprint decode_header(std::string_view bytes);

}  // namespace lcaknap::cert

#endif  // LCAKNAP_CERT_CERTIFICATE_H
