#include "cert/cert_log.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace lcaknap::cert {

namespace {

std::string segment_name(std::uint64_t index, const char* suffix) {
  char name[32];
  std::snprintf(name, sizeof(name), "cert-%06llu.%s",
                static_cast<unsigned long long>(index), suffix);
  return name;
}

}  // namespace

CertLog::CertLog(const CertLogConfig& config,
                 const store::SnapshotFingerprint& fingerprint,
                 metrics::Registry& registry)
    : config_(config),
      fingerprint_(fingerprint),
      records_total_(&registry.counter(
          "cert_records_written_total",
          "Certificate records appended to the certificate log")),
      skipped_total_(&registry.counter(
          "cert_records_skipped_total",
          "Answers served without a certificate while certification was on "
          "(e.g. cache entries predating certification)")),
      bytes_total_(&registry.counter(
          "cert_log_bytes_total",
          "Bytes written to certificate log segments (headers + records)")),
      sealed_total_(&registry.counter(
          "cert_segments_sealed_total",
          "Certificate log segments atomically sealed (.open -> .seg)")),
      failures_total_(&registry.counter(
          "cert_append_failures_total",
          "Certificate log writes that failed (the writer goes inert; "
          "serving is never taken down by certification)")) {
  std::error_code ec;
  if (!std::filesystem::is_directory(config_.directory, ec)) {
    throw CertIoError("certificate: log directory unusable: " +
                      config_.directory);
  }
  const std::lock_guard lock(mutex_);
  open_segment_locked();
  if (broken_) {
    throw CertIoError("certificate: cannot open first segment in " +
                      config_.directory);
  }
}

CertLog::~CertLog() { seal(); }

void CertLog::open_segment_locked() noexcept {
  open_path_ = config_.directory + "/" + segment_name(segment_index_, "open");
  out_.open(open_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    broken_ = true;
    failures_.fetch_add(1, std::memory_order_relaxed);
    failures_total_->inc();
    return;
  }
  std::string header;
  encode_header(header, fingerprint_);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!out_.good()) {
    broken_ = true;
    failures_.fetch_add(1, std::memory_order_relaxed);
    failures_total_->inc();
    return;
  }
  segment_records_ = 0;
  bytes_.fetch_add(header.size(), std::memory_order_relaxed);
  bytes_total_->inc(header.size());
}

std::uint64_t CertLog::append(const CertRecord& record) noexcept {
  const std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  if (!broken_ && !out_.is_open()) open_segment_locked();
  if (broken_) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    failures_total_->inc();
    return seq;
  }
  CertRecord sealed = record;
  sealed.seq = seq;
  char encoded[kCertRecordBytes];  // stack encode: no allocation, no string
  encode_record_to(encoded, sealed);
  out_.write(encoded, static_cast<std::streamsize>(kCertRecordBytes));
  if (!out_.good()) {
    broken_ = true;
    failures_.fetch_add(1, std::memory_order_relaxed);
    failures_total_->inc();
    return seq;
  }
  ++segment_records_;
  // All mutations happen under `mutex_`, so plain stores (not RMW) keep the
  // lock-free getters coherent without paying an atomic add per record.
  records_.store(records_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  bytes_.store(bytes_.load(std::memory_order_relaxed) + kCertRecordBytes,
               std::memory_order_relaxed);
  // Registry counters are flushed in batches (and at every seal): a scrape
  // may lag by up to kMetricsFlushEvery records, never past a sealed segment.
  pending_records_ += 1;
  pending_bytes_ += kCertRecordBytes;
  if (pending_records_ >= kMetricsFlushEvery) flush_metrics_locked();
  if (config_.max_records_per_segment > 0 &&
      segment_records_ >= config_.max_records_per_segment) {
    seal_locked();
  }
  return seq;
}

void CertLog::flush_metrics_locked() noexcept {
  if (pending_records_ > 0) {
    records_total_->inc(pending_records_);
    pending_records_ = 0;
  }
  if (pending_bytes_ > 0) {
    bytes_total_->inc(pending_bytes_);
    pending_bytes_ = 0;
  }
}

void CertLog::skip() noexcept {
  skipped_.fetch_add(1, std::memory_order_relaxed);
  skipped_total_->inc();
}

void CertLog::seal_locked() {
  flush_metrics_locked();
  if (!out_.is_open()) return;
  out_.flush();
  const bool flushed = out_.good();
  out_.close();
  if (!flushed) {
    broken_ = true;
    failures_.fetch_add(1, std::memory_order_relaxed);
    failures_total_->inc();
    return;
  }
  const std::string sealed_path =
      config_.directory + "/" + segment_name(segment_index_, "seg");
  std::error_code ec;
  std::filesystem::rename(open_path_, sealed_path, ec);
  if (ec) {
    broken_ = true;
    failures_.fetch_add(1, std::memory_order_relaxed);
    failures_total_->inc();
    return;
  }
  ++segment_index_;
  sealed_.fetch_add(1, std::memory_order_relaxed);
  sealed_total_->inc();
}

void CertLog::seal() {
  const std::lock_guard lock(mutex_);
  seal_locked();
}

std::uint64_t CertLog::records_written() const noexcept {
  return records_.load(std::memory_order_relaxed);
}
std::uint64_t CertLog::records_skipped() const noexcept {
  return skipped_.load(std::memory_order_relaxed);
}
std::uint64_t CertLog::bytes_written() const noexcept {
  return bytes_.load(std::memory_order_relaxed);
}
std::uint64_t CertLog::segments_sealed() const noexcept {
  return sealed_.load(std::memory_order_relaxed);
}
std::uint64_t CertLog::append_failures() const noexcept {
  return failures_.load(std::memory_order_relaxed);
}

std::vector<std::string> CertLog::list_segments(const std::string& directory) {
  std::vector<std::string> segments;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    const auto name = entry.path().filename().string();
    if (name.rfind("cert-", 0) != 0) continue;
    const auto ext = entry.path().extension().string();
    if (ext != ".seg" && ext != ".open") continue;
    segments.push_back(entry.path().string());
  }
  if (ec) {
    throw CertIoError("certificate: cannot list " + directory + ": " +
                      ec.message());
  }
  // Zero-padded indices make the lexicographic order the replay order (a
  // trailing `.open` segment has the highest index by construction).
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace lcaknap::cert
