#ifndef LCAKNAP_CERT_CERT_LOG_H
#define LCAKNAP_CERT_CERT_LOG_H

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "cert/certificate.h"
#include "metrics/metrics.h"

/// \file cert_log.h
/// `CertLog`: append-only, atomically-rotated certificate log writer.
///
/// The serving engine appends one `CertRecord` per evaluated answer
/// (`EngineConfig::certify`); this class owns the file protocol:
///
///  * the active segment is `cert-NNNNNN.open`; sealed segments are
///    `cert-NNNNNN.seg` — sealing is a flush + atomic rename, so a reader
///    never observes a half-written `.seg` (the `.open` suffix is the
///    explicit "may still grow" marker, mirroring snapshot temp-then-rename);
///  * rotation after `max_records_per_segment` records: seal the current
///    segment, open the next with a fresh header (each segment is
///    independently verifiable — header, fingerprint, and records);
///  * `seq` is assigned under the writer mutex and is strictly increasing
///    across the whole log, segments included, so the verifier can prove no
///    record was dropped or reordered;
///  * appends are buffered (ofstream); a failed stream is counted
///    (`cert_append_failures_total`) and the writer goes inert rather than
///    throwing into the serving hot path — certification must never take
///    down serving.
///
/// Metrics: `cert_records_written_total`, `cert_log_bytes_total`,
/// `cert_segments_sealed_total`, `cert_records_skipped_total`,
/// `cert_append_failures_total` (docs/OBSERVABILITY.md).
///
/// Thread safety: `append`/`skip` may be called from any number of engine
/// workers concurrently; `seal` may race with appends (the TSan hammer in
/// tests/cert covers both).

namespace lcaknap::cert {

struct CertLogConfig {
  /// Directory that receives the segment files (created by the caller).
  std::string directory;
  /// Records per segment before an atomic rotation; 0 means never rotate.
  std::uint64_t max_records_per_segment = 1u << 20;
};

class CertLog {
 public:
  /// Opens the first segment immediately (header written up front, so even
  /// an empty log is a verifiable statement of its serving context).
  /// Throws CertIoError when the directory is unusable.
  CertLog(const CertLogConfig& config,
          const store::SnapshotFingerprint& fingerprint,
          metrics::Registry& registry = metrics::global_registry());

  /// Seals the active segment.
  ~CertLog();

  CertLog(const CertLog&) = delete;
  CertLog& operator=(const CertLog&) = delete;

  /// Appends one record; `record.seq` is ignored and assigned internally.
  /// Returns the assigned sequence number.  Never throws: a broken stream is
  /// counted and further appends become no-ops (see file comment).
  std::uint64_t append(const CertRecord& record) noexcept;

  /// Counts an answer that could not be certified (e.g. a cache entry
  /// predating certification, which carries no witness).  The counter makes
  /// incomplete logs observable instead of silent.
  void skip() noexcept;

  /// Flushes and atomically renames the active `.open` segment to `.seg`.
  /// Idempotent; called by the destructor and by engine drain.  Subsequent
  /// appends open a fresh segment.
  void seal();

  [[nodiscard]] std::uint64_t records_written() const noexcept;
  [[nodiscard]] std::uint64_t records_skipped() const noexcept;
  [[nodiscard]] std::uint64_t bytes_written() const noexcept;
  [[nodiscard]] std::uint64_t segments_sealed() const noexcept;
  [[nodiscard]] std::uint64_t append_failures() const noexcept;
  [[nodiscard]] const CertLogConfig& config() const noexcept { return config_; }

  /// Sorted segment paths (`.seg` first by index, then any `.open`) under
  /// `directory` — the verifier's replay order.
  [[nodiscard]] static std::vector<std::string> list_segments(
      const std::string& directory);

 private:
  /// Opens segment `segment_index_` and writes its header.  Caller holds
  /// `mutex_`.  On failure, counts and leaves the writer inert.
  void open_segment_locked() noexcept;
  void seal_locked();
  /// Pushes batched record/byte counts into the registry counters.  Caller
  /// holds `mutex_`.
  void flush_metrics_locked() noexcept;

  /// Registry counters lag the append path by at most this many records
  /// (exactly caught up at every seal); keeps the per-append cost to plain
  /// stores instead of two shared atomic RMWs.
  static constexpr std::uint64_t kMetricsFlushEvery = 256;

  CertLogConfig config_;
  store::SnapshotFingerprint fingerprint_;

  std::mutex mutex_;
  std::ofstream out_;
  std::string open_path_;            ///< path of the active `.open` file
  std::uint64_t segment_index_ = 0;  ///< next segment number to open
  std::uint64_t segment_records_ = 0;
  std::uint64_t next_seq_ = 0;
  bool broken_ = false;  ///< stream failed: appends are no-ops from here on
  std::uint64_t pending_records_ = 0;  ///< counted but not yet in the registry
  std::uint64_t pending_bytes_ = 0;

  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> skipped_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> sealed_{0};
  std::atomic<std::uint64_t> failures_{0};

  metrics::Counter* records_total_;
  metrics::Counter* skipped_total_;
  metrics::Counter* bytes_total_;
  metrics::Counter* sealed_total_;
  metrics::Counter* failures_total_;
};

}  // namespace lcaknap::cert

#endif  // LCAKNAP_CERT_CERT_LOG_H
