// lcaknap — command-line front end for the library.
//
// Subcommands:
//   generate --family <name> --n <count> [--seed S] [--out FILE]
//       Write an instance of a built-in family to FILE (or stdout).
//   solve    --in FILE [--method exact|greedy|fptas] [--eps E]
//       Solve an instance offline and print the solution summary.
//   serve    --in FILE [--eps E] [--seed S] (--items "i,j,k" | --all)
//            [--flaky RATE] [--retries N] [--warmup-threads K]
//       Run LCA-KP and answer membership queries over the instrumented
//       oracle stack (storage -> metrics -> optional failure injection ->
//       retries).  --warmup-threads parallelizes the one-time warm-up
//       without changing any answer (deterministic sharded sampling).
//   eval     --in FILE [--eps E] [--seed S] [--replicas K] [--queries Q]
//       Run the consistency/quality harness and print the report.
//   snapshot <save|load|verify> --in FILE --snap PATH [--eps E] [--seed S]
//            [--tape T] [--warmup-threads K]
//       Warm-state persistence (docs/PERSISTENCE.md): `save` runs the
//       one-time warm-up and writes a versioned, CRC64-sealed snapshot of
//       (L(I~), EPS); `load` rehydrates it (fingerprint-verified against
//       the instance and flags); `verify` additionally re-runs the live
//       warm-up and proves digest equality (exit 2 on any mismatch).
//   serve-engine --in FILE [--eps E] [--seed S] [--tape T]
//            [--shape uniform|zipf|hotspot]
//            [--queries Q] [--zipf-s S] [--hot-frac F] [--hot-items K]
//            [--workers W] [--queue-cap N] [--batch-max B] [--linger-us L]
//            [--cache-cap N] [--cache-shards S] [--paranoia-every N]
//            [--deadline-us D] [--chaos-plan SPEC] [--chaos-seed S]
//            [--retry-attempts N] [--backoff-us B] [--backoff-max-us M]
//            [--retry-budget R] [--breaker] [--degrade] [--warmup-threads K]
//            [--snapshot-dir DIR] [--instance-id ID]
//            [--certify --cert-dir DIR]
//       Replay a synthetic workload through the concurrent serving engine
//       (bounded queue -> micro-batcher -> worker pool -> sharded answer
//       cache) and print the throughput/outcome/cache report.  With
//       --chaos-plan, the oracle runs through the scripted fault layer
//       (chaos -> verifying -> retrying, armed after warm-up); --breaker
//       adds the circuit breaker, --degrade turns oracle outages into
//       warm-state kDegraded answers instead of kError.  Plan grammar:
//       "steady:200;outage:100:fail=1;brownout:150:fail=0.2,lat=100..400"
//       (durations ms, latencies us) — see docs/RESILIENCE.md.  With
//       --snapshot-dir, the warm state is hydrated through the StateStore:
//       a verified snapshot skips the warm-up entirely; a live warm-up is
//       persisted for the next process (docs/PERSISTENCE.md).  With
//       --certify, every evaluated answer appends a CRC-sealed certificate
//       record to an atomically-rotated log under --cert-dir
//       (docs/CERTIFICATES.md).
//   verify-log --log <FILE|DIR> --snap PATH [--sample K]
//       Offline certificate audit: replay a certificate log against the
//       warm-state snapshot it names and re-derive every answer with ZERO
//       oracle access.  --sample K semantically re-checks every Kth record
//       (structure/CRC always checked).  Exit 2 on any rejection, with the
//       typed reason breakdown printed (docs/CERTIFICATES.md).
//
// Global flag: --metrics=prom|json dumps the metrics registry (Prometheus
// text exposition or JSON lines) to stdout when the command finishes — see
// docs/OBSERVABILITY.md for the family catalogue.
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cert/cert_log.h"
#include "cert/verifier.h"
#include "core/consistency.h"
#include "dyn/epoch_state.h"
#include "dyn/update.h"
#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "core/serving_sim.h"
#include "fault/chaos.h"
#include "fault/circuit_breaker.h"
#include "fault/plan.h"
#include "fault/verifying.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/fptas.h"
#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/solve.h"
#include "metrics/exporters.h"
#include "metrics/metrics.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "oracle/flaky.h"
#include "oracle/instrumented.h"
#include "serve/engine.h"
#include "store/snapshot.h"
#include "store/state_store.h"
#include "util/table.h"
#include "util/virtual_clock.h"

namespace {

using namespace lcaknap;

/// Minimal --flag value parser; flags are unique and take one value, given
/// either as `--flag value` or `--flag=value`, except the booleans (`--all`,
/// `--breaker`, `--degrade`, `--certify`), which take none.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --flag, got: " + key);
      }
      key = key.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (key == "all" || key == "breaker" || key == "degrade" ||
          key == "certify" || key == "allow-shutdown" ||
          key == "verify-epochs") {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) throw std::invalid_argument("--" + key + " needs a value");
      values_[key] = argv[++i];
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt : std::make_optional(it->second);
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::invalid_argument("missing required --" + key);
    return *v;
  }
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::stod(*v) : fallback;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::stoull(*v) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

knapsack::Family parse_family(const std::string& name) {
  for (const auto family : knapsack::all_families()) {
    if (knapsack::family_name(family) == name) return family;
  }
  throw std::invalid_argument("unknown family: " + name +
                              " (try: uncorrelated, needle, subset_sum, ...)");
}

knapsack::Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return knapsack::Instance::load(in);
}

int cmd_generate(const Args& args) {
  const auto family = parse_family(args.require("family"));
  const auto n = static_cast<std::size_t>(args.get_u64("n", 10'000));
  const auto seed = args.get_u64("seed", 1);
  const auto inst = knapsack::make_family(family, n, seed);
  if (const auto out = args.get("out")) {
    std::ofstream os(*out);
    if (!os) throw std::runtime_error("cannot write " + *out);
    inst.save(os);
    std::cout << "wrote " << inst.size() << " items (capacity "
              << inst.capacity() << ") to " << *out << "\n";
  } else {
    inst.save(std::cout);
  }
  return 0;
}

int cmd_solve(const Args& args) {
  const auto inst = load_instance(args.require("in"));
  const std::string method = args.get("method").value_or("greedy");
  knapsack::Solution solution;
  std::string note;
  if (method == "exact") {
    const auto result = knapsack::solve_exact(inst);
    solution = result.solution;
    note = result.proven_optimal ? "proven optimal" : "best found (budget hit)";
  } else if (method == "greedy") {
    solution = knapsack::greedy_half(inst).solution;
    note = "1/2-approximation guarantee";
  } else if (method == "fptas") {
    const double eps = args.get_double("eps", 0.1);
    solution = knapsack::fptas(inst, eps);
    note = "(1 - " + util::format_double(eps, 2) + ")-approximation guarantee";
  } else {
    throw std::invalid_argument("unknown --method: " + method);
  }
  util::Table table({"metric", "value"});
  table.row().cell("items selected").cell(solution.items.size());
  table.row().cell("value").cell(solution.value);
  table.row().cell("weight / capacity").cell(
      std::to_string(solution.weight) + " / " + std::to_string(inst.capacity()));
  table.row().cell("value share").cell(
      static_cast<double>(solution.value) / static_cast<double>(inst.total_profit()));
  table.row().cell("note").cell(note);
  table.print(std::cout, "solve (" + method + ")");
  return 0;
}

std::vector<std::size_t> parse_items(const std::string& csv, std::size_t n) {
  std::vector<std::size_t> items;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const auto idx = std::stoull(token);
    if (idx >= n) throw std::invalid_argument("item index out of range: " + token);
    items.push_back(static_cast<std::size_t>(idx));
  }
  if (items.empty()) throw std::invalid_argument("--items list is empty");
  return items;
}

/// `serve --listen PORT`: the network front door (docs/NETWORKING.md).
/// Hosts one or more tenants behind the length-prefixed binary protocol:
/// register -> warm (StateStore-hydrated, snapshot-first) -> arm optional
/// per-tenant chaos -> accept.  Runs until a gated shutdown frame arrives
/// (--allow-shutdown) or the process is signalled.
int cmd_serve_listen(const Args& args) {
  auto& registry = metrics::global_registry();

  // Tenants: "--tenants a=fileA,b=fileB", or the single default tenant
  // "--in FILE" named by --instance-id.
  std::vector<std::pair<std::string, std::string>> specs;
  if (const auto csv = args.get("tenants")) {
    std::stringstream ss(*csv);
    std::string token;
    while (std::getline(ss, token, ',')) {
      const auto eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        throw std::invalid_argument("--tenants entries are id=file, got: " +
                                    token);
      }
      specs.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
    if (specs.empty()) throw std::invalid_argument("--tenants list is empty");
  } else {
    specs.emplace_back(args.get("instance-id").value_or("default"),
                       args.require("in"));
  }

  core::LcaKpConfig lca_config;
  lca_config.eps = args.get_double("eps", 0.1);
  lca_config.seed = args.get_u64("seed", 0xC0DE);

  serve::EngineConfig engine_config;
  engine_config.workers = static_cast<std::size_t>(args.get_u64("workers", 4));
  engine_config.queue_capacity =
      static_cast<std::size_t>(args.get_u64("queue-cap", 8'192));
  engine_config.batcher.max_batch_size =
      static_cast<std::size_t>(args.get_u64("batch-max", 64));
  engine_config.batcher.max_linger =
      std::chrono::microseconds(args.get_u64("linger-us", 200));
  engine_config.cache.capacity =
      static_cast<std::size_t>(args.get_u64("cache-cap", 1 << 16));
  engine_config.cache.shards =
      static_cast<std::size_t>(args.get_u64("cache-shards", 8));
  engine_config.default_deadline =
      std::chrono::microseconds(args.get_u64("deadline-us", 0));
  engine_config.warmup_threads =
      static_cast<std::size_t>(args.get_u64("warmup-threads", 1));
  engine_config.degrade = args.get("degrade").has_value();
  const std::uint64_t tape_seed = args.get_u64("tape", 7);

  // Per-tenant oracle stacks; own everything the router borrows.
  struct TenantStack {
    explicit TenantStack(knapsack::Instance instance)
        : inst(std::move(instance)) {}
    knapsack::Instance inst;
    std::unique_ptr<oracle::MaterializedAccess> storage;
    std::unique_ptr<oracle::InstrumentedAccess> instrumented;
    std::optional<fault::ChaosAccess> chaos;
    std::unique_ptr<core::LcaKp> lca;
  };
  const auto chaos_tenant = args.get("chaos-tenant");
  const auto chaos_plan = args.get("chaos-plan");
  if (chaos_tenant.has_value() != chaos_plan.has_value()) {
    throw std::invalid_argument(
        "--chaos-tenant and --chaos-plan go together");
  }
  std::vector<std::unique_ptr<TenantStack>> stacks;
  for (const auto& [id, path] : specs) {
    auto stack = std::make_unique<TenantStack>(load_instance(path));
    stack->storage = std::make_unique<oracle::MaterializedAccess>(stack->inst);
    stack->instrumented =
        std::make_unique<oracle::InstrumentedAccess>(*stack->storage, registry);
    const oracle::InstanceAccess* top = stack->instrumented.get();
    if (chaos_tenant && *chaos_tenant == id) {
      // Disarmed through warm-up (the paper's one-time phase is a
      // controlled environment); armed right before accept.
      stack->chaos.emplace(*top,
                           fault::parse_fault_plan(
                               *chaos_plan, args.get_u64("chaos-seed", 0xC405)),
                           util::system_clock(), /*armed=*/false);
      top = &*stack->chaos;
    }
    stack->lca = std::make_unique<core::LcaKp>(*top, lca_config);
    stacks.push_back(std::move(stack));
  }

  store::StateStoreConfig store_config;
  store_config.capacity = static_cast<std::size_t>(
      args.get_u64("store-capacity", std::max<std::uint64_t>(8, specs.size())));
  if (const auto dir = args.get("snapshot-dir")) {
    std::filesystem::create_directories(*dir);
    store_config.snapshot_dir = *dir;
  }
  store_config.warmup_threads = engine_config.warmup_threads;
  store::StateStore state_store(store_config, registry);

  net::TenantRouter router(state_store, registry);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    net::TenantConfig tenant;
    tenant.lca = stacks[i]->lca.get();
    tenant.engine = engine_config;
    tenant.tape_seed = tape_seed;
    tenant.max_inflight =
        static_cast<std::size_t>(args.get_u64("tenant-inflight", 1024));
    router.register_tenant(specs[i].first, tenant);
  }
  // Warm before accepting so the first remote query is never paying a
  // warm-up, then start the scripted storm (if any).
  router.warm_all();
  for (auto& stack : stacks) {
    if (stack->chaos) stack->chaos->arm();
  }

  // Live updates (docs/DYNAMIC.md): an applier thread walks the epoch log,
  // one batch per --update-interval-ms tick, advancing the tenant's
  // EpochedState and its engine while the server keeps answering.  Requests
  // in flight across an advance legally finish under the old epoch; the
  // response frame's epoch_id says which epoch actually answered.
  std::unique_ptr<dyn::EpochedState> dyn_state;
  std::vector<dyn::UpdateBatch> update_log;
  std::atomic<bool> applier_stop{false};
  std::thread applier;
  if (const auto updates = args.get("updates")) {
    if (specs.size() != 1) {
      throw std::invalid_argument("--updates requires exactly one tenant");
    }
    if (chaos_tenant) {
      throw std::invalid_argument("--updates does not combine with "
                                  "--chaos-tenant");
    }
    update_log = dyn::load_epoch_log(*updates);
    dyn::EpochConfig dyn_config;
    dyn_config.lca = lca_config;
    dyn_config.tape_seed = tape_seed;
    dyn_config.warmup_threads = engine_config.warmup_threads;
    dyn_state = std::make_unique<dyn::EpochedState>(
        stacks[0]->inst, dyn_config, registry);
    const auto interval =
        std::chrono::milliseconds(args.get_u64("update-interval-ms", 1'000));
    const std::string tenant_id = specs[0].first;
    applier = std::thread([&router, &dyn_state, &update_log, &applier_stop,
                           tenant_id, interval] {
      for (const auto& batch : update_log) {
        // Sleep in small slices so shutdown is not held up by a long tick.
        const auto wake = std::chrono::steady_clock::now() + interval;
        while (std::chrono::steady_clock::now() < wake) {
          if (applier_stop.load(std::memory_order_relaxed)) return;
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        serve::ServeEngine* engine = router.engine_mut(tenant_id);
        if (engine == nullptr) return;  // tenant failed; nothing to advance
        try {
          const auto report = dyn_state->advance(batch);
          const auto epoch = dyn_state->current();
          engine->advance_epoch(epoch->epoch_id, *epoch->lca, epoch->run,
                                epoch);
          std::cout << "epoch " << report.epoch_id << " installed ("
                    << (report.delta ? "delta" : "rewarm") << ", "
                    << report.mutations << " mutations, reason: "
                    << report.reason << ")" << std::endl;
        } catch (const std::exception& e) {
          std::cerr << "update apply failed: " << e.what() << "\n";
          return;  // leave the last good epoch serving
        }
      }
    });
  }

  net::ServerConfig server_config;
  server_config.port =
      static_cast<std::uint16_t>(args.get_u64("listen", 0));
  server_config.max_connections =
      static_cast<std::size_t>(args.get_u64("max-conns", 256));
  server_config.max_inflight_per_connection =
      static_cast<std::size_t>(args.get_u64("conn-inflight", 128));
  server_config.allow_shutdown = args.get("allow-shutdown").has_value();
  // Echoed on every response frame; the fleet orchestrator gives each
  // replica a distinct id so the checker can attribute answers.
  server_config.replica_id = args.get_u64("replica-id", 0);
  net::Server server(router, server_config, registry);

  // The machine-readable contract the loadgen and the two-process tests
  // parse; announce only once everything above is warm.
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  server.wait_shutdown();
  server.stop();
  applier_stop.store(true, std::memory_order_relaxed);
  if (applier.joinable()) applier.join();
  router.drain();

  const auto stats = server.stats();
  const auto router_stats = router.stats();
  util::Table table({"metric", "value"});
  table.row().cell("tenants").cell(specs.size());
  {
    std::string warm;
    for (const auto& id : state_store.warm_ids()) {
      if (!warm.empty()) warm += ", ";
      warm += id;
    }
    table.row().cell("warm tenants").cell(warm.empty() ? "(none)" : warm);
  }
  if (dyn_state != nullptr) {
    table.row().cell("updates applied (final epoch)")
        .cell(dyn_state->current_epoch_id());
  }
  table.row().cell("connections accepted / shed at capacity")
      .cell(std::to_string(stats.accepted) + " / " +
            std::to_string(stats.at_capacity));
  table.row().cell("frames in").cell(stats.frames_in);
  table.row().cell("decode errors").cell(stats.decode_errors);
  std::string by_status;
  for (std::size_t s = 0; s < stats.by_status.size(); ++s) {
    if (stats.by_status[s] == 0) continue;
    if (!by_status.empty()) by_status += ", ";
    by_status +=
        std::string(net::wire_status_name(static_cast<net::WireStatus>(s))) +
        "=" + std::to_string(stats.by_status[s]);
  }
  table.row().cell("responses by status").cell(
      by_status.empty() ? "(none)" : by_status);
  table.row().cell("wire conservation").cell(
      stats.frames_in == stats.responses_to_frames() ? "HOLDS" : "VIOLATED");
  table.row().cell("bytes in / out").cell(std::to_string(stats.bytes_in) +
                                          " / " +
                                          std::to_string(stats.bytes_out));
  table.row().cell("routed / completed").cell(
      std::to_string(router_stats.routed) + " / " +
      std::to_string(router_stats.completed));
  table.row().cell("quota shed / unknown tenant")
      .cell(std::to_string(router_stats.quota_shed) + " / " +
            std::to_string(router_stats.unknown_tenant));
  table.print(std::cout, "serve --listen");
  if (stats.frames_in != stats.responses_to_frames()) {
    std::cerr << "WIRE CONSERVATION VIOLATED: " << stats.frames_in
              << " frames in, " << stats.responses_to_frames()
              << " responses\n";
    return 2;
  }
  return 0;
}

int cmd_serve(const Args& args) {
  if (args.get("listen")) return cmd_serve_listen(args);
  const auto inst = load_instance(args.require("in"));
  core::LcaKpConfig config;
  config.eps = args.get_double("eps", 0.1);
  config.seed = args.get_u64("seed", 0xC0DE);
  config.warmup_threads =
      static_cast<std::size_t>(args.get_u64("warmup-threads", 1));

  // The serving oracle stack, innermost first: storage -> instrumentation
  // (the registry's canonical counters) -> optional injected failures ->
  // client-side retries.  The decorators are access-transparent, so answers
  // are identical to serving straight off storage.
  auto& registry = metrics::global_registry();
  const oracle::MaterializedAccess storage(inst);
  const oracle::InstrumentedAccess instrumented(storage, registry);
  const double flaky_rate = args.get_double("flaky", 0.0);
  std::optional<oracle::FlakyAccess> flaky;
  if (flaky_rate > 0.0) {
    flaky.emplace(instrumented, flaky_rate, args.get_u64("flaky-seed", 0xF1A), registry);
  }
  const oracle::InstanceAccess& upstream = flaky ? static_cast<const oracle::InstanceAccess&>(*flaky)
                                                 : instrumented;
  const oracle::RetryingAccess access(
      upstream, static_cast<int>(args.get_u64("retries", 16)), registry);
  const core::LcaKp lca(access, config);

  // Sharded deterministic warm-up: `--warmup-threads K` changes wall time,
  // never the answers (the draws come from per-shard PRF substreams of the
  // tape seed, not from a sequential tape).
  const auto run = lca.run_warmup(args.get_u64("tape", 7));

  std::vector<std::size_t> items;
  if (args.get("all")) {
    items.resize(inst.size());
    for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;
  } else {
    items = parse_items(args.require("items"), inst.size());
  }
  metrics::Counter& served_total = registry.counter(
      "serving_queries_total", "Membership queries served by the replica fleet");
  metrics::Histogram& latency_hist = registry.histogram(
      "serving_query_latency_us",
      "Per-query serving latency in microseconds",
      core::serving_latency_buckets());
  std::size_t yes = 0;
  for (const auto i : items) {
    bool in = false;
    {
      const metrics::ScopedTimer span(latency_hist);
      in = lca.answer_from(run, i);
    }
    served_total.inc();
    yes += in ? 1 : 0;
    if (!args.get("all")) {
      std::cout << "item " << i << ": " << (in ? "yes" : "no") << "\n";
    }
  }
  std::cout << "answered " << items.size() << " queries (" << yes
            << " yes) using " << run.samples_used
            << " weighted samples for the run\n";
  return 0;
}

int cmd_eval(const Args& args) {
  const auto inst = load_instance(args.require("in"));
  core::LcaKpConfig config;
  config.eps = args.get_double("eps", 0.1);
  config.seed = args.get_u64("seed", 0xC0DE);
  core::ConsistencyConfig experiment;
  experiment.replicas = static_cast<std::size_t>(args.get_u64("replicas", 8));
  experiment.queries = static_cast<std::size_t>(args.get_u64("queries", 200));

  double opt_norm = 0.0;
  const auto exact = knapsack::solve_exact(inst);
  if (exact.proven_optimal) {
    opt_norm = static_cast<double>(exact.solution.value) /
               static_cast<double>(inst.total_profit());
  }
  const auto report = core::run_consistency(inst, config, experiment, opt_norm);
  util::Table table({"metric", "value"});
  table.row().cell("replicas x queries").cell(
      std::to_string(report.replicas) + " x " + std::to_string(report.queries));
  table.row().cell("pairwise agreement").cell(report.pairwise_agreement);
  table.row().cell("unanimous queries").cell(report.unanimous_fraction);
  table.row().cell("identical replica pairs").cell(report.identical_pair_fraction);
  table.row().cell("feasible runs").cell(
      std::to_string(report.feasible_runs) + "/" + std::to_string(report.replicas));
  table.row().cell("mean value (normalized)").cell(report.mean_norm_value);
  if (opt_norm > 0) table.row().cell("mean value / OPT").cell(report.mean_value_ratio);
  table.row().cell("mean samples per run").cell(report.mean_samples_per_run, 0);
  table.print(std::cout, "eval");
  return 0;
}

int cmd_snapshot(const std::string& action, const Args& args) {
  if (action != "save" && action != "load" && action != "verify") {
    throw std::invalid_argument("unknown snapshot action: " + action +
                                " (try: save, load, verify)");
  }
  const auto inst = load_instance(args.require("in"));
  const std::string snap_path = args.require("snap");
  core::LcaKpConfig config;
  config.eps = args.get_double("eps", 0.1);
  config.seed = args.get_u64("seed", 0xC0DE);
  config.warmup_threads =
      static_cast<std::size_t>(args.get_u64("warmup-threads", 1));
  const std::uint64_t tape_seed = args.get_u64("tape", 7);

  const oracle::MaterializedAccess storage(inst);
  const oracle::InstrumentedAccess access(storage, metrics::global_registry());
  const core::LcaKp lca(access, config);
  const auto fingerprint = store::fingerprint_of(lca, tape_seed);

  util::Table table({"metric", "value"});
  if (action == "save") {
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = lca.run_warmup(tape_seed);
    const double warmup_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    store::write_snapshot(snap_path, fingerprint, run);
    table.row().cell("digest").cell(std::to_string(core::run_digest(run)));
    table.row().cell("large items |L(I~)|").cell(run.index_large.size());
    table.row().cell("EPS thresholds").cell(run.thresholds_grid.size());
    table.row().cell("warm-up samples").cell(run.samples_used);
    table.row().cell("warm-up ms").cell(warmup_ms, 1);
    table.row().cell("snapshot bytes").cell(
        static_cast<std::uint64_t>(std::filesystem::file_size(snap_path)));
    table.row().cell("path").cell(snap_path);
    table.print(std::cout, "snapshot save");
    return 0;
  }

  // load / verify: rehydrate with full CRC + fingerprint verification; a
  // failure of either is a runtime error (exit 2) — a bad snapshot must
  // never look like success.
  const auto t0 = std::chrono::steady_clock::now();
  const auto run = store::read_snapshot(snap_path, &fingerprint);
  const double restore_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
  const auto digest = core::run_digest(run);
  table.row().cell("digest").cell(std::to_string(digest));
  table.row().cell("large items |L(I~)|").cell(run.index_large.size());
  table.row().cell("EPS thresholds").cell(run.thresholds_grid.size());
  table.row().cell("restore ms").cell(restore_ms, 2);
  if (action == "load") {
    table.row().cell("fingerprint").cell("verified");
    table.print(std::cout, "snapshot load");
    return 0;
  }
  const auto live = lca.run_warmup(tape_seed);
  const auto live_digest = core::run_digest(live);
  table.row().cell("live warm-up digest").cell(std::to_string(live_digest));
  table.row().cell("digests").cell(digest == live_digest ? "MATCH" : "MISMATCH");
  table.print(std::cout, "snapshot verify");
  if (digest != live_digest) {
    std::cerr << "VERIFY FAILED: snapshot digest " << digest
              << " != live warm-up digest " << live_digest << "\n";
    return 2;
  }
  return 0;
}

core::WorkloadConfig::Shape parse_shape(const std::string& name) {
  if (name == "uniform") return core::WorkloadConfig::Shape::kUniform;
  if (name == "zipf") return core::WorkloadConfig::Shape::kZipf;
  if (name == "hotspot") return core::WorkloadConfig::Shape::kHotspot;
  throw std::invalid_argument("unknown --shape: " + name +
                              " (try: uniform, zipf, hotspot)");
}

/// `serve-engine --updates FILE`: replay the workload through a *dynamic*
/// instance (docs/DYNAMIC.md).  The epoch log's batches are applied at
/// deterministic points — the trace is split into `batches + 1` contiguous
/// segments, each segment fully completes before the next advance — so two
/// runs of the same flags produce the same per-epoch accounting.  Every
/// advance goes through `dyn::EpochedState` (delta warm-up where provably
/// sound, full re-warm-up otherwise) and `ServeEngine::advance_epoch`
/// (cache generation bump, fresh BatchEval).  Exit 2 if any response
/// arrives attributed to an epoch that was never installed.
int cmd_serve_engine_updates(const Args& args) {
  for (const char* conflict : {"chaos-plan", "snapshot-dir", "certify"}) {
    if (args.get(conflict)) {
      throw std::invalid_argument(std::string("--updates does not combine "
                                              "with --") +
                                  conflict);
    }
  }
  auto inst = load_instance(args.require("in"));
  const auto log = dyn::load_epoch_log(args.require("updates"));
  if (log.empty()) throw std::invalid_argument("epoch log has no batches");

  dyn::EpochConfig dyn_config;
  dyn_config.lca.eps = args.get_double("eps", 0.1);
  dyn_config.lca.seed = args.get_u64("seed", 0xC0DE);
  dyn_config.tape_seed = args.get_u64("tape", 7);
  dyn_config.warmup_threads =
      static_cast<std::size_t>(args.get_u64("warmup-threads", 1));
  dyn_config.verify_digest = args.get("verify-epochs").has_value();
  dyn::EpochedState state(std::move(inst), dyn_config,
                          metrics::global_registry());
  const auto epoch0 = state.current();

  core::WorkloadConfig workload;
  workload.shape = parse_shape(args.get("shape").value_or("hotspot"));
  workload.queries = static_cast<std::size_t>(args.get_u64("queries", 100'000));
  workload.zipf_s = args.get_double("zipf-s", 1.1);
  workload.hotspot_fraction = args.get_double("hot-frac", 0.9);
  workload.hotspot_items = static_cast<std::size_t>(args.get_u64("hot-items", 16));
  workload.seed = args.get_u64("workload-seed", 1);
  // Draw indices from the base size: deletes tombstone in place (indices
  // stay valid) and inserts only append, so the trace is always in range.
  const auto trace = core::generate_workload(epoch0->instance->size(), workload);

  serve::EngineConfig engine_config;
  engine_config.workers = static_cast<std::size_t>(args.get_u64("workers", 4));
  engine_config.queue_capacity =
      static_cast<std::size_t>(args.get_u64("queue-cap", 8'192));
  engine_config.batcher.max_batch_size =
      static_cast<std::size_t>(args.get_u64("batch-max", 64));
  engine_config.batcher.max_linger =
      std::chrono::microseconds(args.get_u64("linger-us", 200));
  engine_config.cache.capacity =
      static_cast<std::size_t>(args.get_u64("cache-cap", 1 << 16));
  engine_config.cache.shards =
      static_cast<std::size_t>(args.get_u64("cache-shards", 8));
  engine_config.cache.paranoia_every = args.get_u64("paranoia-every", 64);
  engine_config.warmup_tape_seed = dyn_config.tape_seed;
  engine_config.warm_state = epoch0->run;  // already warmed (and traced)
  serve::ServeEngine engine(*epoch0->lca, engine_config);

  // Segment boundaries: batch k applies after segment k completes.
  const std::size_t segments = log.size() + 1;
  const std::size_t per_segment =
      std::max<std::size_t>(1, trace.size() / segments);
  std::map<std::uint64_t, std::uint64_t> served_by_epoch;
  std::size_t delta_advances = 0;
  std::size_t rewarm_advances = 0;
  std::size_t applied = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t at = 0;
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const std::size_t end =
        seg + 1 == segments ? trace.size()
                            : std::min(trace.size(), at + per_segment);
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(end - at);
    for (; at < end; ++at) futures.push_back(engine.submit(trace[at]));
    for (auto& future : futures) {
      const auto response = future.get();
      if (response.outcome == serve::Outcome::kOk) {
        ++served_by_epoch[response.epoch_id];
      }
    }
    if (seg + 1 < segments) {
      const auto report = state.advance(log[seg]);
      const auto epoch = state.current();
      engine.advance_epoch(epoch->epoch_id, *epoch->lca, epoch->run, epoch);
      (report.delta ? delta_advances : rewarm_advances) += 1;
      ++applied;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  engine.drain();

  const auto stats = engine.stats();
  util::Table table({"metric", "value"});
  table.row().cell("requests").cell(stats.submitted);
  table.row().cell("ok / overloaded / deadline / degraded / error")
      .cell(std::to_string(stats.ok) + " / " + std::to_string(stats.overloaded) +
            " / " + std::to_string(stats.deadline_exceeded) + " / " +
            std::to_string(stats.degraded) + " / " +
            std::to_string(stats.errors));
  table.row().cell("epochs applied (delta / rewarm)")
      .cell(std::to_string(applied) + " (" + std::to_string(delta_advances) +
            " / " + std::to_string(rewarm_advances) + ")");
  {
    std::string by_epoch;
    for (const auto& [epoch_id, count] : served_by_epoch) {
      if (!by_epoch.empty()) by_epoch += ", ";
      by_epoch += "e" + std::to_string(epoch_id) + "=" + std::to_string(count);
    }
    table.row().cell("ok answers by served epoch").cell(
        by_epoch.empty() ? "(none)" : by_epoch);
  }
  table.row().cell("cache invalidations").cell(stats.cache_invalidations);
  table.row().cell("throughput (requests/s)").cell(
      elapsed_s > 0 ? static_cast<double>(stats.submitted) / elapsed_s : 0.0,
      0);
  table.row().cell("final epoch").cell(stats.epoch);
  table.row().cell("final warm-state digest").cell(
      std::to_string(core::run_digest(*state.current()->run)));
  table.print(std::cout, "serve-engine --updates (" +
                             std::to_string(log.size()) + " batches)");
  // Every served epoch must be one that was actually installed: 0..final.
  for (const auto& [epoch_id, count] : served_by_epoch) {
    if (epoch_id > stats.epoch) {
      std::cerr << "EPOCH ATTRIBUTION VIOLATION: " << count
                << " answers claim epoch " << epoch_id
                << " > final epoch " << stats.epoch << "\n";
      return 2;
    }
  }
  if (stats.paranoia_violations > 0) {
    std::cerr << "CONSISTENCY VIOLATION: cached answers disagreed with "
                 "re-evaluation\n";
    return 2;
  }
  return 0;
}

int cmd_serve_engine(const Args& args) {
  if (args.get("updates")) return cmd_serve_engine_updates(args);
  const auto inst = load_instance(args.require("in"));
  core::LcaKpConfig lca_config;
  lca_config.eps = args.get_double("eps", 0.1);
  lca_config.seed = args.get_u64("seed", 0xC0DE);

  core::WorkloadConfig workload;
  workload.shape = parse_shape(args.get("shape").value_or("hotspot"));
  workload.queries = static_cast<std::size_t>(args.get_u64("queries", 100'000));
  workload.zipf_s = args.get_double("zipf-s", 1.1);
  workload.hotspot_fraction = args.get_double("hot-frac", 0.9);
  workload.hotspot_items = static_cast<std::size_t>(args.get_u64("hot-items", 16));
  workload.seed = args.get_u64("workload-seed", 1);

  serve::EngineConfig engine_config;
  engine_config.workers = static_cast<std::size_t>(args.get_u64("workers", 4));
  engine_config.queue_capacity =
      static_cast<std::size_t>(args.get_u64("queue-cap", 8'192));
  engine_config.batcher.max_batch_size =
      static_cast<std::size_t>(args.get_u64("batch-max", 64));
  engine_config.batcher.max_linger =
      std::chrono::microseconds(args.get_u64("linger-us", 200));
  engine_config.cache.capacity =
      static_cast<std::size_t>(args.get_u64("cache-cap", 1 << 16));
  engine_config.cache.shards =
      static_cast<std::size_t>(args.get_u64("cache-shards", 8));
  engine_config.cache.paranoia_every = args.get_u64("paranoia-every", 64);
  engine_config.default_deadline =
      std::chrono::microseconds(args.get_u64("deadline-us", 0));
  engine_config.warmup_tape_seed = args.get_u64("tape", 7);
  engine_config.warmup_threads =
      static_cast<std::size_t>(args.get_u64("warmup-threads", 1));
  engine_config.degrade = args.get("degrade").has_value();
  engine_config.certify = args.get("certify").has_value();
  if (engine_config.certify) {
    engine_config.cert_dir = args.require("cert-dir");
    std::filesystem::create_directories(engine_config.cert_dir);
    engine_config.cert_segment_records = args.get_u64("cert-segment-records", 0);
  } else if (args.get("cert-dir")) {
    throw std::invalid_argument("--cert-dir requires --certify");
  }

  const oracle::MaterializedAccess storage(inst);
  const oracle::InstrumentedAccess access(storage, metrics::global_registry());

  // Optional resilience stack: chaos -> verifying -> retrying [-> breaker].
  // The chaos layer starts disarmed so the engine's one-time warm-up sees a
  // healthy oracle; it is armed right before the replay begins.
  const oracle::InstanceAccess* top = &access;
  std::optional<fault::ChaosAccess> chaos;
  std::optional<fault::VerifyingAccess> verifying;
  std::optional<oracle::RetryingAccess> retrying;
  std::optional<fault::BreakerAccess> breaker;
  if (const auto plan_spec = args.get("chaos-plan")) {
    chaos.emplace(*top, fault::parse_fault_plan(
                            *plan_spec, args.get_u64("chaos-seed", 0xC405)),
                  util::system_clock(), /*armed=*/false);
    verifying.emplace(*chaos);
    oracle::RetryConfig retry_config;
    retry_config.max_attempts =
        static_cast<int>(args.get_u64("retry-attempts", 5));
    retry_config.base_backoff_us = args.get_u64("backoff-us", 200);
    retry_config.max_backoff_us =
        args.get_u64("backoff-max-us", std::max<std::uint64_t>(
                                           20'000, retry_config.base_backoff_us));
    retry_config.retry_budget_ratio = args.get_double("retry-budget", 0.1);
    retrying.emplace(*verifying, retry_config, util::system_clock());
    top = &*retrying;
  }
  if (args.get("breaker")) {
    breaker.emplace(*top, fault::CircuitBreakerConfig{});
    top = &*breaker;
  }

  const core::LcaKp lca(*top, lca_config);
  const auto trace = core::generate_workload(inst.size(), workload);

  // Warm-state hydration through the StateStore when a snapshot directory is
  // given: a verified snapshot skips the warm-up; a live warm-up is
  // persisted so the *next* process restores instead of re-warming.  This
  // runs before the chaos layer is armed, like the engine's own warm-up.
  std::string warm_source = "live warm-up";
  if (const auto dir = args.get("snapshot-dir")) {
    std::filesystem::create_directories(*dir);
    store::StateStoreConfig store_config;
    store_config.snapshot_dir = *dir;
    store_config.capacity = 4;
    store_config.warmup_threads = engine_config.warmup_threads;
    store::StateStore state_store(store_config);
    const std::string id = args.get("instance-id").value_or("default");
    engine_config.warm_state =
        state_store.get(id, lca, engine_config.warmup_tape_seed);
    warm_source = state_store.stats().snapshot_hydrations > 0
                      ? "restored from snapshot"
                      : "live warm-up (persisted)";
  }

  serve::ServeEngine engine(lca, engine_config);
  if (chaos) chaos->arm();  // warm-up done: start the scripted storm
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(trace.size());
  for (const auto item : trace) futures.push_back(engine.submit(item));
  std::size_t yes = 0;
  std::size_t from_cache = 0;
  for (auto& future : futures) {
    const auto response = future.get();
    const bool answered = response.outcome == serve::Outcome::kOk ||
                          response.outcome == serve::Outcome::kDegraded;
    yes += answered && response.answer ? 1 : 0;
    from_cache += response.cache_hit ? 1 : 0;
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  engine.drain();

  const auto stats = engine.stats();
  util::Table table({"metric", "value"});
  table.row().cell("requests").cell(stats.submitted);
  table.row().cell("ok / overloaded / deadline / degraded / error")
      .cell(std::to_string(stats.ok) + " / " + std::to_string(stats.overloaded) +
            " / " + std::to_string(stats.deadline_exceeded) + " / " +
            std::to_string(stats.degraded) + " / " +
            std::to_string(stats.errors));
  table.row().cell("yes answers").cell(yes);
  table.row().cell("throughput (requests/s)").cell(
      elapsed_s > 0 ? static_cast<double>(stats.submitted) / elapsed_s : 0.0, 0);
  // Two views of the cache: per lookup (one lookup serves a whole batch)
  // and per request (the traffic fraction the cache actually absorbed).
  const auto lookups = stats.cache_hits + stats.cache_misses;
  table.row().cell("cache hit rate (per lookup)").cell(
      lookups > 0 ? static_cast<double>(stats.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0);
  table.row().cell("requests served from cache").cell(
      stats.submitted > 0 ? static_cast<double>(from_cache) /
                                static_cast<double>(stats.submitted)
                          : 0.0);
  table.row().cell("cache evictions").cell(stats.cache_evictions);
  table.row().cell("mean batch size").cell(
      stats.batches > 0 ? static_cast<double>(stats.batched_requests) /
                              static_cast<double>(stats.batches)
                        : 0.0);
  table.row().cell("paranoia checks / violations")
      .cell(std::to_string(stats.paranoia_checks) + " / " +
            std::to_string(stats.paranoia_violations));
  table.row().cell("warm-up samples").cell(engine.run().samples_used);
  if (args.get("snapshot-dir")) {
    table.row().cell("warm state").cell(warm_source);
    table.row().cell("warm state digest").cell(
        std::to_string(core::run_digest(engine.run())));
  }
  if (chaos) {
    table.row().cell("faults injected (failstop/latency/corruption)")
        .cell(std::to_string(chaos->failstops_injected()) + " / " +
              std::to_string(chaos->latencies_injected()) + " / " +
              std::to_string(chaos->corruptions_injected()));
    table.row().cell("corruptions detected").cell(verifying->corruptions_detected());
    table.row().cell("retries / budget-exhausted")
        .cell(std::to_string(retrying->retries_performed()) + " / " +
              std::to_string(retrying->budget_exhausted()));
  }
  if (breaker) {
    const auto counters = breaker->breaker().counters();
    table.row().cell("breaker trips / fast-fails")
        .cell(std::to_string(counters.to_open) + " / " +
              std::to_string(counters.rejected));
  }
  if (engine_config.certify) {
    table.row().cell("certificates written / skipped")
        .cell(std::to_string(stats.cert_records) + " / " +
              std::to_string(stats.cert_skipped));
    table.row().cell("certificate segments sealed").cell(stats.cert_segments);
    table.row().cell("certificate log bytes").cell(stats.cert_bytes);
    table.row().cell("certificate dir").cell(engine_config.cert_dir);
  }
  table.print(std::cout, "serve-engine (" + args.get("shape").value_or("hotspot") +
                             ", " + std::to_string(engine_config.workers) +
                             " workers)");
  if (stats.paranoia_violations > 0) {
    std::cerr << "CONSISTENCY VIOLATION: cached answers disagreed with "
                 "re-evaluation\n";
    return 2;
  }
  return 0;
}

int cmd_verify_log(const Args& args) {
  const std::string log_path = args.require("log");
  const std::string snap_path = args.require("snap");
  cert::VerifierConfig verifier_config;
  verifier_config.sample_every = args.get_u64("sample", 1);

  // The snapshot is the only input besides the log: its fingerprint pins the
  // instance/config/tape identity and its payload carries (L(I~), EPS).  No
  // oracle object is ever constructed — this audit is instance-blind.
  store::SnapshotFingerprint fingerprint;
  const auto run = store::read_snapshot(snap_path, nullptr, &fingerprint);
  const cert::LogVerifier verifier(fingerprint, run, verifier_config);
  const auto report = verifier.verify_path(log_path);

  util::Table table({"metric", "value"});
  table.row().cell("segments").cell(report.segments);
  table.row().cell("records").cell(report.records);
  table.row().cell("semantically checked").cell(report.records_checked);
  table.row().cell("sample rate (every Kth)").cell(
      std::max<std::uint64_t>(1, verifier_config.sample_every));
  table.row().cell("accepted / rejected")
      .cell(std::to_string(report.accepted) + " / " +
            std::to_string(report.rejected));
  for (int r = 0; r < cert::kRejectReasonCount; ++r) {
    if (report.by_reason[static_cast<std::size_t>(r)] == 0) continue;
    table.row()
        .cell(std::string("rejected: ") +
              cert::reject_reason_name(static_cast<cert::RejectReason>(r)))
        .cell(report.by_reason[static_cast<std::size_t>(r)]);
  }
  table.row().cell("throughput (records/s)").cell(
      report.seconds > 0
          ? static_cast<double>(report.records) / report.seconds
          : 0.0, 0);
  table.row().cell("oracle queries").cell(std::uint64_t{0});
  table.row().cell("verdict").cell(report.clean() ? "CLEAN" : "REJECTED");
  table.print(std::cout, "verify-log");
  for (const auto& example : report.examples) {
    std::cerr << "reject: " << example << "\n";
  }
  return report.clean() ? 0 : 2;
}

void usage() {
  std::cerr <<
      "usage: lcaknap_cli <command> [flags] [--metrics=prom|json]\n"
      "  generate --family NAME --n N [--seed S] [--out FILE]\n"
      "  solve    --in FILE [--method exact|greedy|fptas] [--eps E]\n"
      "  serve    --in FILE [--eps E] [--seed S] (--items i,j,k | --all)\n"
      "           [--flaky RATE] [--retries N] [--warmup-threads K]\n"
      "  serve    --listen PORT (--in FILE | --tenants a=fileA,b=fileB)\n"
      "           [--instance-id ID] [--eps E] [--seed S] [--tape T]\n"
      "           [--workers W] [--queue-cap N] [--batch-max B] [--linger-us L]\n"
      "           [--cache-cap N] [--cache-shards S] [--deadline-us D]\n"
      "           [--max-conns N] [--conn-inflight N] [--tenant-inflight N]\n"
      "           [--store-capacity N] [--snapshot-dir DIR] [--degrade]\n"
      "           [--chaos-tenant ID --chaos-plan SPEC] [--chaos-seed S]\n"
      "           [--allow-shutdown] [--replica-id N]\n"
      "           [--updates FILE] [--update-interval-ms M]\n"
      "  eval     --in FILE [--eps E] [--seed S] [--replicas K] [--queries Q]\n"
      "  snapshot <save|load|verify> --in FILE --snap PATH [--eps E] [--seed S]\n"
      "           [--tape T] [--warmup-threads K]\n"
      "  serve-engine --in FILE [--eps E] [--seed S] [--tape T]\n"
      "           [--shape uniform|zipf|hotspot] [--queries Q] [--zipf-s S]\n"
      "           [--hot-frac F] [--hot-items K] [--workers W] [--queue-cap N]\n"
      "           [--batch-max B] [--linger-us L] [--cache-cap N]\n"
      "           [--cache-shards S] [--paranoia-every N] [--deadline-us D]\n"
      "           [--chaos-plan SPEC] [--chaos-seed S] [--retry-attempts N]\n"
      "           [--backoff-us B] [--backoff-max-us M] [--retry-budget R]\n"
      "           [--breaker] [--degrade] [--warmup-threads K]\n"
      "           [--snapshot-dir DIR] [--instance-id ID]\n"
      "           [--certify --cert-dir DIR]\n"
      "           [--updates FILE] [--verify-epochs]\n"
      "  verify-log --log FILE|DIR --snap PATH [--sample K]\n"
      "--warmup-threads parallelizes the one-time warm-up run without\n"
      "changing any served answer (deterministic sharded sampling).\n"
      "snapshot save writes a versioned, CRC64-sealed warm-state snapshot;\n"
      "load rehydrates it (fingerprint-verified); verify re-runs the live\n"
      "warm-up (--tape selects its randomness tape) and proves digest\n"
      "equality, exit 2 on mismatch (see docs/PERSISTENCE.md).\n"
      "--snapshot-dir hydrates serve-engine's warm state through the\n"
      "StateStore: a verified snapshot named by --instance-id skips the\n"
      "warm-up; a live warm-up is persisted for the next process.\n"
      "--certify emits one CRC-sealed certificate record per evaluated\n"
      "answer into an atomically-rotated log under --cert-dir; verify-log\n"
      "replays such a log against the warm-state snapshot offline (zero\n"
      "oracle access), semantically re-checking every Kth record (--sample),\n"
      "exit 2 on any rejection (see docs/CERTIFICATES.md).\n"
      "--chaos-plan scripts oracle faults during the replay, e.g.\n"
      "  \"steady:200;outage:100:fail=1;brownout:150:fail=0.2,lat=100..400\"\n"
      "(durations ms, latencies us; see docs/RESILIENCE.md).\n"
      "--listen turns serve into a TCP front-end on 127.0.0.1 (port 0 picks\n"
      "an ephemeral port, announced as 'listening on 127.0.0.1:PORT'): the\n"
      "length-prefixed binary protocol of docs/NETWORKING.md, multi-tenant\n"
      "routing by instance id through the StateStore, per-connection and\n"
      "per-tenant backpressure shedding kOverloaded, and an optional\n"
      "per-tenant chaos plan armed after warm-up.  --allow-shutdown honours\n"
      "the gated remote-shutdown frame (tests; never production).\n"
      "--replica-id stamps every response frame with this replica's id so a\n"
      "fleet client or the consistency checker can attribute answers\n"
      "(docs/FLEET.md).  Drive it with tools/lcaknap_loadgen, or run a whole\n"
      "replica fleet with tools/lcaknap_fleet.\n"
      "--updates FILE applies a CRC-sealed epoch log of instance mutations\n"
      "(insert/delete/profit/weight batches; docs/DYNAMIC.md) while serving:\n"
      "serve-engine splits the replay into one segment per batch and\n"
      "advances deterministically between segments (--verify-epochs also\n"
      "proves every delta warm-up digest-equal to a fresh one, exit 2 on\n"
      "mismatch); serve --listen applies one batch every\n"
      "--update-interval-ms on a live applier thread.  Each advance takes\n"
      "the delta warm-up when provably sound and the full re-warm-up\n"
      "otherwise; answers carry the epoch that served them.\n"
      "--metrics dumps the metric registry to stdout at exit (Prometheus\n"
      "text exposition or JSON lines); see docs/OBSERVABILITY.md.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    // `snapshot <action> --flags...` carries a positional action word at
    // argv[2]; shift the window so the flag parser starts after it.
    const bool positional_action = (command == "snapshot");
    if (positional_action &&
        (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0)) {
      throw std::invalid_argument("snapshot needs an action: save|load|verify");
    }
    const Args args = positional_action ? Args(argc - 1, argv + 1)
                                        : Args(argc, argv);
    // Resolve the exporter up front so a bad --metrics value is a usage
    // error before any work happens.
    std::optional<metrics::ExportFormat> metrics_format;
    if (const auto format = args.get("metrics")) {
      metrics_format = metrics::parse_export_format(*format);
    }
    int rc = 1;
    if (command == "generate") {
      rc = cmd_generate(args);
    } else if (command == "solve") {
      rc = cmd_solve(args);
    } else if (command == "serve") {
      rc = cmd_serve(args);
    } else if (command == "eval") {
      rc = cmd_eval(args);
    } else if (command == "serve-engine") {
      rc = cmd_serve_engine(args);
    } else if (command == "verify-log") {
      rc = cmd_verify_log(args);
    } else if (command == "snapshot") {
      rc = cmd_snapshot(argv[2], args);
    } else {
      usage();
      return 1;
    }
    if (metrics_format) {
      metrics::write_registry(metrics::global_registry(), *metrics_format, std::cout);
    }
    return rc;
  } catch (const std::invalid_argument& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
