// lcaknap_verify_log — standalone offline certificate auditor.
//
//   lcaknap_verify_log --log <FILE|DIR> --snap PATH [--sample K] [--quiet]
//
// Replays a certificate log (written by `serve-engine --certify`) against
// the warm-state snapshot it names and re-derives every answer.  The point
// of this binary existing separately from the full CLI is its link line:
// it links cert + store + core + iky + metrics + util and NOTHING from
// oracle/, fault/, or knapsack/ — build-system proof that certificate
// verification needs zero oracle access and no instance file.  See
// docs/CERTIFICATES.md for the record layout and the audit runbook.
//
// Exit codes: 0 clean, 1 usage error, 2 any rejection or runtime failure.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "cert/verifier.h"
#include "store/snapshot.h"
#include "util/table.h"

namespace {

using namespace lcaknap;

/// Tiny flag parser (the full CLI's Args, minus the boolean whitelist this
/// binary does not need beyond --quiet).
std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> values;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + key);
    }
    key = key.substr(2);
    if (const auto eq = key.find('='); eq != std::string::npos) {
      values[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    if (key == "quiet") {
      values[key] = "true";
      continue;
    }
    if (i + 1 >= argc) throw std::invalid_argument("--" + key + " needs a value");
    values[key] = argv[++i];
  }
  return values;
}

void usage() {
  std::cerr << "usage: lcaknap_verify_log --log FILE|DIR --snap PATH"
               " [--sample K] [--quiet]\n"
               "Offline certificate audit: re-derives every Kth recorded\n"
               "answer from the snapshot's warm state alone (zero oracle\n"
               "access; CRC structure always checked).  Exit 2 on any\n"
               "rejection.  See docs/CERTIFICATES.md.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  try {
    flags = parse_flags(argc, argv);
    if (!flags.count("log") || !flags.count("snap")) {
      throw std::invalid_argument("--log and --snap are required");
    }
  } catch (const std::exception& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 1;
  }
  try {
    cert::VerifierConfig config;
    if (const auto it = flags.find("sample"); it != flags.end()) {
      config.sample_every = std::stoull(it->second);
    }
    store::SnapshotFingerprint fingerprint;
    const auto run = store::read_snapshot(flags.at("snap"), nullptr, &fingerprint);
    const cert::LogVerifier verifier(fingerprint, run, config);
    const auto report = verifier.verify_path(flags.at("log"));

    if (!flags.count("quiet")) {
      util::Table table({"metric", "value"});
      table.row().cell("segments").cell(report.segments);
      table.row().cell("records").cell(report.records);
      table.row().cell("semantically checked").cell(report.records_checked);
      table.row().cell("accepted / rejected")
          .cell(std::to_string(report.accepted) + " / " +
                std::to_string(report.rejected));
      for (int r = 0; r < cert::kRejectReasonCount; ++r) {
        if (report.by_reason[static_cast<std::size_t>(r)] == 0) continue;
        table.row()
            .cell(std::string("rejected: ") +
                  cert::reject_reason_name(static_cast<cert::RejectReason>(r)))
            .cell(report.by_reason[static_cast<std::size_t>(r)]);
      }
      table.row().cell("throughput (records/s)").cell(
          report.seconds > 0
              ? static_cast<double>(report.records) / report.seconds
              : 0.0, 0);
      table.row().cell("oracle queries").cell(std::uint64_t{0});
      table.row().cell("verdict").cell(report.clean() ? "CLEAN" : "REJECTED");
      table.print(std::cout, "verify-log");
      for (const auto& example : report.examples) {
        std::cerr << "reject: " << example << "\n";
      }
    }
    return report.clean() ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
