// lcaknap_loadgen — closed- and open-loop traffic driver for
// `lcaknap_cli serve --listen` (docs/NETWORKING.md, experiment E20).
//
//   lcaknap_loadgen (--port P [--host 127.0.0.1] |
//                    --targets host:port,host:port)
//     [--tenant default] [--mode closed|open] [--connections C] [--window W]
//     [--queries N] [--duration-ms D] [--qps R]
//     [--shape flat|diurnal] [--period-ms P]
//     [--items-max M] [--seed S] [--deadline-us D] [--json]
//     [--trace-record FILE] [--trace-replay FILE]
//
// Shape (open loop only): `--shape diurnal` modulates the offered rate
// sinusoidally around --qps — rate(t) = qps * (1 + 0.8 sin(2πt/P)) with
// period `--period-ms` (default 1000) — a compressed day/night cycle for
// exercising epoch advances (`serve --updates`) under load that ebbs and
// surges instead of a flat firehose.  Conservation is unchanged: every
// sent frame is still drained, whatever the shape.
//
// Trace record/replay (util/request_trace.h, "lcaknap-trace 1" format):
// `--trace-record FILE` writes every sent frame — timestamp relative to run
// start, item, tenant — merged across connections in timestamp order, so a
// synthetic run (or a tcpdump-shaped production log converted to the same
// format) becomes a replayable artifact.  `--trace-replay FILE` drives item
// and tenant selection from a recorded log instead of the RNG: the trace is
// split into contiguous per-connection slices (record order preserved within
// each) and each record is sent exactly once (`--queries` caps it); pacing
// stays the mode's own (window or --qps).  Replay targets a single endpoint.
//
// Multi-endpoint mode (`--targets`) drives every replica of a fleet
// concurrently with the same workload shape, splitting the query budget
// evenly; the report gains a per-target status table and the conservation
// exit check extends across targets: every target must individually satisfy
// sent == received, so a violated replica cannot hide behind a sibling's
// surplus.
//
// Closed loop (default): each of C connections keeps a window of W frames
// in flight — send, wait, send — so offered load self-regulates to what the
// server sustains; the classic saturation probe.  `--queries N` bounds the
// total; `--duration-ms` bounds the wall time (whichever first).
//
// Open loop: frames are paced at a fixed `--qps` total regardless of
// responses (a sender and a drainer thread per connection) — the overload
// probe: offered load does not slow down when the server sheds, so the
// kOverloaded wire status and the conservation law do the talking.
//
// Reports sent/answered counts, responses by wire status, wire-level
// conservation (sent == responses received, zero silent drops), latency
// percentiles, and achieved qps; `--json` emits one machine-readable line
// (the E20 harness parses it).
//
// Exit codes: 0 success, 1 usage error, 2 runtime/conservation failure.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "net/wire.h"
#include "util/request_trace.h"
#include "util/table.h"

namespace {

using namespace lcaknap;
using Clock = std::chrono::steady_clock;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --flag, got: " + key);
      }
      key = key.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (key == "json" || key == "shutdown") {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        throw std::invalid_argument("--" + key + " needs a value");
      }
      values_[key] = argv[++i];
    }
  }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt : std::make_optional(it->second);
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::stoull(*v) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Per-connection tally, merged after the run.
struct ConnResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::array<std::uint64_t, 8> by_status{};
  /// Ok answers by the epoch that served them (ResponseFrame::epoch_id) —
  /// the churn-mode view: across a `serve --updates` advance this splits
  /// between consecutive epochs, and the split must account for every ok.
  std::map<std::uint64_t, std::uint64_t> ok_by_epoch;
  std::vector<double> latencies_us;
  std::vector<util::TraceRecord> trace;  ///< sent frames (--trace-record)
  std::string error;  ///< first socket failure, if any
};

struct RunConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string tenant = "default";
  bool open_loop = false;
  std::size_t connections = 1;
  std::size_t window = 1;
  std::uint64_t total_queries = 10'000;
  std::uint64_t duration_ms = 0;  ///< 0 = unbounded (closed loop only)
  double qps = 0.0;               ///< open loop target, all connections
  std::uint64_t items_max = 1'000;
  std::uint64_t seed = 1;
  std::uint64_t deadline_us = 0;
  /// Open-loop rate shape: sinusoidal day/night cycle instead of flat qps.
  bool diurnal = false;
  std::uint64_t period_ms = 1'000;  ///< diurnal cycle length
  /// Record every sent frame into ConnResult::trace (--trace-record).
  bool record_trace = false;
  /// Timestamp origin for recorded frames (the run's start).
  Clock::time_point epoch{};
  /// Replay source (--trace-replay); null = synthetic RNG workload.
  const std::vector<util::TraceRecord>* replay = nullptr;
};

void record(ConnResult& result, const net::ResponseFrame& response,
            double latency_us) {
  result.received += 1;
  const auto s = static_cast<std::size_t>(response.status);
  if (s < result.by_status.size()) result.by_status[s] += 1;
  if (response.status == net::WireStatus::kOk) {
    result.ok_by_epoch[response.epoch_id] += 1;
  }
  result.latencies_us.push_back(latency_us);
}

/// Fills the workload fields of a frame (synthetic RNG pick, or the next
/// record of this connection's replay slice) and records it when asked.
/// Shared by both loop modes so record/replay behave identically in each.
template <typename Rng, typename Pick>
void fill_frame(net::RequestFrame& frame, const RunConfig& config,
                const std::vector<util::TraceRecord>& slice,
                std::size_t& replay_pos, Rng& rng, Pick& pick,
                ConnResult& result) {
  if (!slice.empty()) {
    const auto& record = slice[replay_pos % slice.size()];
    ++replay_pos;
    frame.item = record.item;
    frame.tenant = record.tenant;
  } else {
    frame.item = pick(rng);
    frame.tenant = config.tenant;
  }
  frame.deadline_us = config.deadline_us;
  if (config.record_trace) {
    const auto now_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              config.epoch)
            .count());
    result.trace.push_back(
        util::TraceRecord{now_us, frame.item, frame.tenant});
  }
}

/// Closed loop: keep `window` frames outstanding until the quota or the
/// deadline; every sent frame is drained before the connection closes.
void run_closed(const RunConfig& config, std::uint64_t quota,
                std::uint64_t conn_seed,
                const std::vector<util::TraceRecord>& slice,
                ConnResult& result) {
  try {
    net::Client client(config.host, config.port);
    std::mt19937_64 rng(conn_seed);
    std::uniform_int_distribution<std::uint64_t> pick(
        0, config.items_max > 0 ? config.items_max - 1 : 0);
    std::unordered_map<std::uint64_t, Clock::time_point> outstanding;
    const auto start = Clock::now();
    const auto deadline =
        config.duration_ms > 0
            ? start + std::chrono::milliseconds(config.duration_ms)
            : Clock::time_point::max();
    std::uint64_t next_id = 1;
    std::size_t replay_pos = 0;
    const auto send_one = [&] {
      net::RequestFrame frame;
      frame.request_id = next_id++;
      fill_frame(frame, config, slice, replay_pos, rng, pick, result);
      outstanding.emplace(frame.request_id, Clock::now());
      client.send(frame);
      result.sent += 1;
    };
    while (result.sent < quota && Clock::now() < deadline) {
      while (outstanding.size() < config.window && result.sent < quota) {
        send_one();
      }
      if (outstanding.empty()) break;
      const auto response = client.recv();
      const auto it = outstanding.find(response.request_id);
      const double latency =
          it == outstanding.end()
              ? 0.0
              : std::chrono::duration<double, std::micro>(Clock::now() -
                                                          it->second)
                    .count();
      if (it != outstanding.end()) outstanding.erase(it);
      record(result, response, latency);
    }
    while (!outstanding.empty()) {
      const auto response = client.recv();
      const auto it = outstanding.find(response.request_id);
      const double latency =
          it == outstanding.end()
              ? 0.0
              : std::chrono::duration<double, std::micro>(Clock::now() -
                                                          it->second)
                    .count();
      if (it != outstanding.end()) outstanding.erase(it);
      record(result, response, latency);
    }
  } catch (const std::exception& e) {
    result.error = e.what();
  }
}

/// Open loop: a paced sender and a drainer thread share the connection;
/// offered load never backs off.
void run_open(const RunConfig& config, double conn_qps, std::uint64_t quota,
              std::uint64_t conn_seed,
              const std::vector<util::TraceRecord>& slice,
              ConnResult& result) {
  try {
    net::Client client(config.host, config.port);
    std::mutex mutex;
    std::unordered_map<std::uint64_t, Clock::time_point> outstanding;
    std::atomic<bool> done_sending{false};

    std::thread drainer([&] {
      try {
        while (true) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (done_sending.load(std::memory_order_acquire) &&
                outstanding.empty()) {
              return;
            }
          }
          const auto response = client.recv();
          double latency = 0.0;
          {
            std::lock_guard<std::mutex> lock(mutex);
            const auto it = outstanding.find(response.request_id);
            if (it != outstanding.end()) {
              latency = std::chrono::duration<double, std::micro>(
                            Clock::now() - it->second)
                            .count();
              outstanding.erase(it);
            }
          }
          std::lock_guard<std::mutex> lock(mutex);
          record(result, response, latency);
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mutex);
        if (result.error.empty()) result.error = e.what();
      }
    });

    std::mt19937_64 rng(conn_seed);
    std::uniform_int_distribution<std::uint64_t> pick(
        0, config.items_max > 0 ? config.items_max - 1 : 0);
    const auto start = Clock::now();
    const auto end = start + std::chrono::milliseconds(
                                 config.duration_ms > 0 ? config.duration_ms
                                                        : 1'000);
    // Instantaneous offered rate at elapsed time t.  Flat shape: conn_qps.
    // Diurnal shape: conn_qps * (1 + 0.8 sin(2πt/period)) — oscillates
    // between 0.2x and 1.8x around the same mean, floored away from zero so
    // the night trough still makes forward progress.
    const auto rate_at = [&](Clock::time_point now) {
      if (!config.diurnal) return conn_qps;
      const double t_s = std::chrono::duration<double>(now - start).count();
      const double period_s =
          static_cast<double>(std::max<std::uint64_t>(1, config.period_ms)) /
          1'000.0;
      const double factor =
          1.0 + 0.8 * std::sin(2.0 * 3.14159265358979323846 * t_s / period_s);
      return std::max(conn_qps * factor, conn_qps * 0.05);
    };
    auto next_send = start;
    std::uint64_t next_id = 1;
    std::size_t replay_pos = 0;
    while (Clock::now() < end && result.sent < quota) {
      if (conn_qps > 0) {
        std::this_thread::sleep_until(next_send);
        const double rate = rate_at(Clock::now());
        next_send += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(rate > 0 ? 1.0 / rate : 0.0));
      }
      net::RequestFrame frame;
      frame.request_id = next_id++;
      fill_frame(frame, config, slice, replay_pos, rng, pick, result);
      {
        std::lock_guard<std::mutex> lock(mutex);
        outstanding.emplace(frame.request_id, Clock::now());
      }
      client.send(frame);
      result.sent += 1;
    }
    done_sending.store(true, std::memory_order_release);
    drainer.join();
  } catch (const std::exception& e) {
    if (result.error.empty()) result.error = e.what();
  }
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// One endpoint's merged outcome (multi-target mode drives several).
struct TargetOutcome {
  std::string label;
  ConnResult total;
};

/// Fans `config.connections` out against one endpoint and merges.
TargetOutcome run_target(const RunConfig& config) {
  const std::uint64_t per_conn =
      (config.total_queries + config.connections - 1) / config.connections;
  // Replay: contiguous per-connection slices preserve record order (and the
  // non-decreasing timestamps) within each connection; every record is sent
  // exactly once, so each connection's quota is its slice size.
  std::vector<std::vector<util::TraceRecord>> slices(config.connections);
  if (config.replay != nullptr) {
    const auto& records = *config.replay;
    const std::size_t chunk =
        (records.size() + config.connections - 1) / config.connections;
    for (std::size_t c = 0; c < config.connections; ++c) {
      const std::size_t begin = std::min(c * chunk, records.size());
      const std::size_t end = std::min(begin + chunk, records.size());
      slices[c].assign(records.begin() + static_cast<std::ptrdiff_t>(begin),
                       records.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  std::vector<ConnResult> results(config.connections);
  std::vector<std::thread> threads;
  threads.reserve(config.connections);
  for (std::size_t c = 0; c < config.connections; ++c) {
    const std::uint64_t conn_seed = config.seed * 0x9E3779B97F4A7C15ull + c;
    const std::uint64_t quota =
        config.replay != nullptr ? slices[c].size() : per_conn;
    if (config.open_loop) {
      const double conn_qps =
          config.qps / static_cast<double>(config.connections);
      threads.emplace_back([&, c, conn_seed, conn_qps, quota] {
        run_open(config, conn_qps, quota, conn_seed, slices[c], results[c]);
      });
    } else {
      threads.emplace_back([&, c, conn_seed, quota] {
        run_closed(config, quota, conn_seed, slices[c], results[c]);
      });
    }
  }
  for (auto& t : threads) t.join();

  TargetOutcome outcome;
  outcome.label = config.host + ":" + std::to_string(config.port);
  for (auto& r : results) {
    outcome.total.sent += r.sent;
    outcome.total.received += r.received;
    for (std::size_t s = 0; s < outcome.total.by_status.size(); ++s) {
      outcome.total.by_status[s] += r.by_status[s];
    }
    for (const auto& [epoch, n] : r.ok_by_epoch) {
      outcome.total.ok_by_epoch[epoch] += n;
    }
    outcome.total.latencies_us.insert(outcome.total.latencies_us.end(),
                                      r.latencies_us.begin(),
                                      r.latencies_us.end());
    outcome.total.trace.insert(outcome.total.trace.end(), r.trace.begin(),
                               r.trace.end());
    if (outcome.total.error.empty() && !r.error.empty()) {
      outcome.total.error = r.error;
    }
  }
  return outcome;
}

std::string status_summary(const std::array<std::uint64_t, 8>& by_status) {
  std::string summary;
  for (std::size_t s = 0; s < by_status.size(); ++s) {
    if (by_status[s] == 0) continue;
    if (!summary.empty()) summary += ", ";
    summary +=
        std::string(net::wire_status_name(static_cast<net::WireStatus>(s))) +
        "=" + std::to_string(by_status[s]);
  }
  return summary.empty() ? "(none)" : summary;
}

int run(const Args& args) {
  RunConfig config;
  config.host = args.get("host").value_or("127.0.0.1");
  config.port = static_cast<std::uint16_t>(
      std::stoul(args.get("port").value_or("0")));
  // Multi-endpoint mode: "--targets host:port,host:port" drives every
  // replica of a fleet concurrently with the same workload shape; the
  // conservation law then has to hold per target AND across the fleet.
  std::vector<std::pair<std::string, std::uint16_t>> targets;
  if (const auto csv = args.get("targets")) {
    std::stringstream ss(*csv);
    std::string token;
    while (std::getline(ss, token, ',')) {
      if (token.empty()) continue;
      const auto colon = token.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        throw std::invalid_argument("--targets entries are host:port, got: " +
                                    token);
      }
      targets.emplace_back(
          token.substr(0, colon),
          static_cast<std::uint16_t>(std::stoul(token.substr(colon + 1))));
    }
    if (targets.empty()) throw std::invalid_argument("--targets list is empty");
  } else {
    if (config.port == 0) {
      throw std::invalid_argument("--port or --targets is required");
    }
    targets.emplace_back(config.host, config.port);
  }
  config.tenant = args.get("tenant").value_or("default");
  const std::string mode = args.get("mode").value_or("closed");
  if (mode != "closed" && mode != "open") {
    throw std::invalid_argument("unknown --mode: " + mode);
  }
  config.open_loop = mode == "open";
  config.connections =
      std::max<std::size_t>(1, args.get_u64("connections", 1));
  config.window = std::max<std::size_t>(1, args.get_u64("window", 1));
  config.total_queries = args.get_u64("queries", 10'000);
  config.duration_ms = args.get_u64("duration-ms", 0);
  config.qps = static_cast<double>(args.get_u64("qps", 0));
  config.items_max = std::max<std::uint64_t>(1, args.get_u64("items-max", 1'000));
  config.seed = args.get_u64("seed", 1);
  config.deadline_us = args.get_u64("deadline-us", 0);
  const std::string shape = args.get("shape").value_or("flat");
  if (shape != "flat" && shape != "diurnal") {
    throw std::invalid_argument("unknown --shape: " + shape);
  }
  config.diurnal = shape == "diurnal";
  config.period_ms = std::max<std::uint64_t>(1, args.get_u64("period-ms", 1'000));
  if (config.diurnal && !config.open_loop) {
    throw std::invalid_argument("--shape diurnal needs --mode open (a closed "
                                "loop has no offered rate to modulate)");
  }
  if (config.open_loop && config.qps <= 0) {
    throw std::invalid_argument("--mode open needs --qps");
  }

  // Trace record/replay (see the header comment for semantics).
  const auto trace_record = args.get("trace-record");
  const auto trace_replay = args.get("trace-replay");
  config.record_trace = trace_record.has_value();
  std::vector<util::TraceRecord> replay_records;
  if (trace_replay) {
    if (targets.size() > 1) {
      throw std::invalid_argument("--trace-replay drives a single target");
    }
    replay_records = util::load_trace_file(*trace_replay);
    if (replay_records.empty()) {
      throw std::invalid_argument("--trace-replay: trace has no records");
    }
    // --queries caps the replay; otherwise the whole log is sent once.
    if (args.get("queries")) {
      const auto cap = args.get_u64("queries", replay_records.size());
      if (cap < replay_records.size()) replay_records.resize(cap);
    }
    config.total_queries = replay_records.size();
    config.replay = &replay_records;
  }

  // Each target gets an equal share of the query budget and its own set of
  // connections; targets run concurrently (the fleet sees simultaneous
  // load, as it would from a real front door).
  const std::uint64_t per_target =
      (config.total_queries + targets.size() - 1) / targets.size();
  std::vector<TargetOutcome> outcomes(targets.size());
  std::vector<std::thread> target_threads;
  target_threads.reserve(targets.size());
  const auto t0 = Clock::now();
  config.epoch = t0;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    RunConfig target_config = config;
    target_config.host = targets[t].first;
    target_config.port = targets[t].second;
    target_config.total_queries = per_target;
    target_config.seed = config.seed + t * 0x9E37ull;
    target_threads.emplace_back([t, target_config, &outcomes] {
      outcomes[t] = run_target(target_config);
    });
  }
  for (auto& t : target_threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  ConnResult total;
  for (auto& outcome : outcomes) {
    auto& r = outcome.total;
    total.sent += r.sent;
    total.received += r.received;
    for (std::size_t s = 0; s < total.by_status.size(); ++s) {
      total.by_status[s] += r.by_status[s];
    }
    for (const auto& [epoch, n] : r.ok_by_epoch) {
      total.ok_by_epoch[epoch] += n;
    }
    total.latencies_us.insert(total.latencies_us.end(), r.latencies_us.begin(),
                              r.latencies_us.end());
    total.trace.insert(total.trace.end(), r.trace.begin(), r.trace.end());
    if (total.error.empty() && !r.error.empty()) total.error = r.error;
  }
  if (config.record_trace) {
    // Merge across connections/targets into one timestamp-ordered log
    // (stable: same-instant frames keep their merge order).
    std::stable_sort(total.trace.begin(), total.trace.end(),
                     [](const util::TraceRecord& a, const util::TraceRecord& b) {
                       return a.timestamp_us < b.timestamp_us;
                     });
    util::save_trace_file(total.trace, *trace_record);
    std::cerr << "recorded " << total.trace.size() << " requests to "
              << *trace_record << "\n";
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const double p50 = percentile(total.latencies_us, 0.50);
  const double p95 = percentile(total.latencies_us, 0.95);
  const double p99 = percentile(total.latencies_us, 0.99);
  const double qps =
      elapsed_s > 0 ? static_cast<double>(total.received) / elapsed_s : 0.0;
  const std::uint64_t ok =
      total.by_status[static_cast<std::size_t>(net::WireStatus::kOk)];
  // Conservation must hold per target and therefore across them: a violated
  // target cannot hide behind a surplus on a sibling.
  bool conserved = total.sent == total.received;
  for (const auto& outcome : outcomes) {
    conserved = conserved && outcome.total.sent == outcome.total.received;
  }

  if (args.get("json")) {
    std::ostringstream json;
    json << "{\"mode\":\"" << mode << "\",\"shape\":\"" << shape
         << "\",\"connections\":"
         << config.connections << ",\"window\":" << config.window
         << ",\"sent\":" << total.sent << ",\"received\":" << total.received
         << ",\"qps\":" << qps << ",\"p50_us\":" << p50 << ",\"p95_us\":"
         << p95 << ",\"p99_us\":" << p99 << ",\"conserved\":"
         << (conserved ? "true" : "false");
    json << ",\"ok_by_epoch\":{";
    bool first_epoch = true;
    for (const auto& [epoch, n] : total.ok_by_epoch) {
      if (!first_epoch) json << ",";
      first_epoch = false;
      json << "\"" << epoch << "\":" << n;
    }
    json << "}";
    for (std::size_t s = 0; s < total.by_status.size(); ++s) {
      json << ",\"" << net::wire_status_name(static_cast<net::WireStatus>(s))
           << "\":" << total.by_status[s];
    }
    json << ",\"targets\":[";
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
      const auto& outcome = outcomes[t];
      if (t > 0) json << ",";
      json << "{\"target\":\"" << outcome.label
           << "\",\"sent\":" << outcome.total.sent
           << ",\"received\":" << outcome.total.received << ",\"conserved\":"
           << (outcome.total.sent == outcome.total.received ? "true" : "false");
      for (std::size_t s = 0; s < outcome.total.by_status.size(); ++s) {
        json << ",\""
             << net::wire_status_name(static_cast<net::WireStatus>(s))
             << "\":" << outcome.total.by_status[s];
      }
      json << "}";
    }
    json << "]}";
    std::cout << json.str() << std::endl;
  } else {
    util::Table table({"metric", "value"});
    table.row().cell("mode").cell(config.diurnal ? mode + " (diurnal)" : mode);
    table.row().cell("connections x window").cell(
        std::to_string(config.connections) + " x " +
        std::to_string(config.window));
    table.row().cell("sent / received").cell(std::to_string(total.sent) +
                                             " / " +
                                             std::to_string(total.received));
    table.row().cell("by status").cell(status_summary(total.by_status));
    if (!total.ok_by_epoch.empty()) {
      std::string by_epoch;
      for (const auto& [epoch, n] : total.ok_by_epoch) {
        if (!by_epoch.empty()) by_epoch += ", ";
        by_epoch += "e" + std::to_string(epoch) + "=" + std::to_string(n);
      }
      table.row().cell("ok by served epoch").cell(by_epoch);
    }
    table.row().cell("ok fraction").cell(
        total.received > 0
            ? static_cast<double>(ok) / static_cast<double>(total.received)
            : 0.0);
    table.row().cell("achieved qps").cell(qps, 0);
    table.row().cell("p50 / p95 / p99 us").cell(
        std::to_string(static_cast<std::uint64_t>(p50)) + " / " +
        std::to_string(static_cast<std::uint64_t>(p95)) + " / " +
        std::to_string(static_cast<std::uint64_t>(p99)));
    table.row().cell("wire conservation").cell(conserved ? "HOLDS"
                                                         : "VIOLATED");
    table.print(std::cout, "loadgen");
    if (outcomes.size() > 1) {
      util::Table per_target({"target", "sent / received", "by status",
                              "conserved"});
      for (const auto& outcome : outcomes) {
        per_target.row()
            .cell(outcome.label)
            .cell(std::to_string(outcome.total.sent) + " / " +
                  std::to_string(outcome.total.received))
            .cell(status_summary(outcome.total.by_status))
            .cell(outcome.total.sent == outcome.total.received ? "HOLDS"
                                                               : "VIOLATED");
      }
      per_target.print(std::cout, "per target");
    }
  }
  if (args.get("shutdown")) {
    // Ask every --allow-shutdown server to exit (scripted runs / CI smoke).
    for (const auto& [host, port] : targets) {
      net::Client client(host, port);
      net::RequestFrame frame;
      frame.flags = net::RequestFrame::kFlagShutdown;
      frame.tenant = config.tenant;
      const auto response = client.call(frame);
      std::cerr << "shutdown " << host << ":" << port << " -> "
                << net::wire_status_name(response.status) << "\n";
    }
  }
  if (!total.error.empty()) {
    std::cerr << "error: " << total.error << "\n";
    return 2;
  }
  return conserved ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Args(argc, argv));
  } catch (const std::invalid_argument& e) {
    std::cerr << "usage error: " << e.what() << "\n"
              << "usage: lcaknap_loadgen (--port P [--host H] |"
                 " --targets host:port,host:port)\n"
                 "  [--tenant ID] [--mode closed|open] [--connections C]\n"
                 "  [--window W] [--queries N] [--duration-ms D] [--qps R]\n"
                 "  [--shape flat|diurnal] [--period-ms P]\n"
                 "  [--items-max M] [--seed S] [--deadline-us D] [--json]\n"
                 "  [--shutdown] [--trace-record FILE] [--trace-replay FILE]\n"
                 "--targets drives every endpoint concurrently (the query\n"
                 "budget splits evenly); the report adds a per-target status\n"
                 "table and conservation must hold per target and across\n"
                 "them (exit 2 otherwise).\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
