// lcaknap_fleet — replica-fleet orchestrator, chaos driller, and
// cross-replica consistency checker (docs/FLEET.md, experiment E21).
//
//   lcaknap_fleet drill --cli PATH --in FILE [--groups 3] [--queries 400]
//     [--items-max 64] [--kill-after 120] [--eps E] [--seed S] [--tape T]
//     [--tenant ID] [--work-dir DIR] [--budget-us B] [--max-attempts N]
//     [--chaos-plan SPEC] [--chaos-seed S] [--corrupt-shipment]
//     [--vnodes V] [--ring-seed S] [--check-items N] [--json]
//
//   lcaknap_fleet check --targets host:port,host:port [--tenant ID]
//     [--queries 64] [--items-max 64] [--seed S] [--json]
//
//   lcaknap_fleet map --groups N [--vnodes 64] [--ring-seed S]
//     --tenant-list a,b,c
//
// `drill` spawns one `lcaknap_cli serve --listen` process per replica group
// (distinct --replica-id, own --snapshot-dir), storms queries through a
// `fleet::FleetClient`, SIGKILLs a serving replica mid-storm (and/or runs a
// replica-granularity `--chaos-plan` through `fleet::ReplicaChaos`: kill,
// SIGSTOP/SIGCONT brownout, snapshot corruption in flight), then bootstraps
// a replacement from a snapshot shipped off a survivor, waits for its
// health frame to report warm, and verifies the replacement answers are
// digest-identical to the answers observed before the kill.  The exit
// ledger asserts the fleet conservation law
//
//   offered == ok + failed_over + degraded + overloaded + deadline + error
//
// and zero cross-replica divergences (Lemma 4.9 over the fleet).
//
// Exit codes: 0 success, 1 usage/spawn error, 2 a drilled invariant failed
// (conservation violated, divergence found, replacement answers mismatched,
// or the replacement never warmed).

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/plan.h"
#include "fleet/bootstrap.h"
#include "fleet/chaos.h"
#include "fleet/checker.h"
#include "fleet/client.h"
#include "fleet/map.h"
#include "net/client.h"
#include "net/wire.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/virtual_clock.h"

namespace {

using namespace lcaknap;

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --flag, got: " + key);
      }
      key = key.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (key == "json" || key == "corrupt-shipment") {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        throw std::invalid_argument("--" + key + " needs a value");
      }
      values_[key] = argv[++i];
    }
  }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt : std::make_optional(it->second);
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::invalid_argument("--" + key + " is required");
    return *v;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::stoull(*v, nullptr, 0) : fallback;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto v = get(key);
    return v ? std::stod(*v) : fallback;
  }

 private:
  std::unordered_map<std::string, std::string> values_;
};

/// One spawned `lcaknap_cli serve --listen` replica process.
struct ReplicaProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  std::uint16_t port = 0;
  std::uint64_t replica_id = 0;
  std::uint64_t group = 0;
  std::string snapshot_dir;
  std::string pending;  ///< buffered child stdout
  bool alive = false;
};

/// Owns every child; best-effort SIGKILL + reap on unwind so a failed drill
/// never leaves replica processes behind.
class Fleet {
 public:
  ~Fleet() {
    for (auto& replica : replicas_) kill_replica(replica);
  }

  /// fork/exec one replica and parse its "listening on 127.0.0.1:PORT"
  /// announcement (the CLI prints it only once warm).  Throws on spawn
  /// failure or a child that exits/never announces within `timeout_ms`.
  ReplicaProcess& spawn(const std::string& cli,
                        const std::vector<std::string>& flags,
                        std::uint64_t replica_id, std::uint64_t group,
                        const std::string& snapshot_dir, int timeout_ms) {
    int fds[2];
    if (pipe(fds) != 0) {
      throw std::system_error(errno, std::generic_category(), "pipe");
    }
    const pid_t pid = fork();
    if (pid < 0) {
      throw std::system_error(errno, std::generic_category(), "fork");
    }
    if (pid == 0) {
      // Child: stdout+stderr onto the pipe, then exec the CLI.
      dup2(fds[1], STDOUT_FILENO);
      dup2(fds[1], STDERR_FILENO);
      close(fds[0]);
      close(fds[1]);
      std::vector<std::string> argv_store;
      argv_store.push_back(cli);
      for (const auto& flag : flags) argv_store.push_back(flag);
      std::vector<char*> argv;
      argv.reserve(argv_store.size() + 1);
      for (auto& arg : argv_store) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(cli.c_str(), argv.data());
      perror("execv");
      _exit(127);
    }
    close(fds[1]);
    ReplicaProcess replica;
    replica.pid = pid;
    replica.stdout_fd = fds[0];
    replica.replica_id = replica_id;
    replica.group = group;
    replica.snapshot_dir = snapshot_dir;
    replica.alive = true;
    replicas_.push_back(std::move(replica));
    auto& stored = replicas_.back();
    stored.port = await_port(stored, timeout_ms);
    return stored;
  }

  void kill_replica(ReplicaProcess& replica) {
    if (!replica.alive) return;
    ::kill(replica.pid, SIGKILL);
    int status = 0;
    waitpid(replica.pid, &status, 0);
    if (replica.stdout_fd >= 0) {
      close(replica.stdout_fd);
      replica.stdout_fd = -1;
    }
    replica.alive = false;
  }

  /// Deque, not vector: spawning the replacement must not invalidate the
  /// victim/survivor references the drill holds into earlier replicas.
  [[nodiscard]] std::deque<ReplicaProcess>& replicas() { return replicas_; }

 private:
  [[nodiscard]] std::uint16_t await_port(ReplicaProcess& replica,
                                         int timeout_ms) {
    const std::string needle = "listening on 127.0.0.1:";
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    char buffer[4096];
    while (std::chrono::steady_clock::now() < deadline) {
      const auto at = replica.pending.find(needle);
      if (at != std::string::npos) {
        const auto end = replica.pending.find('\n', at);
        if (end != std::string::npos) {
          return static_cast<std::uint16_t>(std::stoul(
              replica.pending.substr(at + needle.size(),
                                     end - at - needle.size())));
        }
      }
      pollfd pfd{replica.stdout_fd, POLLIN, 0};
      const int ready = poll(&pfd, 1, 100);
      if (ready <= 0) continue;
      const auto got = read(replica.stdout_fd, buffer, sizeof(buffer));
      if (got <= 0) break;  // child died before announcing
      replica.pending.append(buffer, static_cast<std::size_t>(got));
    }
    kill_replica(replica);
    throw std::runtime_error("replica " + std::to_string(replica.replica_id) +
                             " never announced a listen port; output so far:\n" +
                             replica.pending);
  }

  std::deque<ReplicaProcess> replicas_;
};

/// Draws drill items deterministically so re-running a drill replays the
/// same query sequence (timestamps aside).
std::uint64_t drill_item(const util::Prf& prf, std::uint64_t index,
                         std::uint64_t items_max) {
  return prf.word(1, index) % items_max;
}

int cmd_drill(const Args& args) {
  const auto cli = args.require("cli");
  const auto instance = args.require("in");
  const auto groups = args.get_u64("groups", 3);
  const auto queries = args.get_u64("queries", 400);
  const auto items_max = std::max<std::uint64_t>(1, args.get_u64("items-max", 64));
  const auto kill_after = args.get_u64("kill-after", queries / 3);
  const auto tenant = args.get("tenant").value_or("default");
  const auto check_items =
      std::min<std::uint64_t>(args.get_u64("check-items", 32), items_max);
  const bool json = args.get("json").has_value();
  if (groups < 2) {
    throw std::invalid_argument("--groups must be >= 2 (failover needs a sibling)");
  }

  const std::string work_dir = args.get("work-dir").value_or(
      (std::filesystem::temp_directory_path() /
       ("lcaknap_fleet_" + std::to_string(getpid())))
          .string());
  std::filesystem::create_directories(work_dir);

  const std::string eps = std::to_string(args.get_double("eps", 0.1));
  const std::string seed = std::to_string(args.get_u64("seed", 0xC0DE));
  const std::string tape = std::to_string(args.get_u64("tape", 7));
  auto serve_flags = [&](const std::string& snapshot_dir,
                         std::uint64_t replica_id) {
    return std::vector<std::string>{
        "serve",           "--listen",      "0",
        "--in",            instance,        "--instance-id", tenant,
        "--eps",           eps,             "--seed",        seed,
        "--tape",          tape,            "--snapshot-dir", snapshot_dir,
        "--replica-id",    std::to_string(replica_id)};
  };

  Fleet fleet;
  auto& clock = util::system_clock();
  const auto fleet_start_us = clock.now_us();
  for (std::uint64_t g = 0; g < groups; ++g) {
    const std::string dir = work_dir + "/group" + std::to_string(g);
    fleet.spawn(cli, serve_flags(dir, g + 1), g + 1, g, dir, 30'000);
  }
  std::uint64_t initial_warm_us = 0;
  for (auto& replica : fleet.replicas()) {
    if (!fleet::wait_ready("127.0.0.1", replica.port, {tenant}, 30'000'000,
                           clock)) {
      std::cerr << "replica " << replica.replica_id << " never warmed\n";
      return 1;
    }
  }
  initial_warm_us = clock.now_us() - fleet_start_us;

  fleet::FleetClientConfig client_config;
  client_config.map.vnodes =
      static_cast<std::size_t>(args.get_u64("vnodes", 64));
  client_config.map.seed = args.get_u64("ring-seed", 0xF1EE7);
  client_config.max_attempts =
      static_cast<std::size_t>(args.get_u64("max-attempts", groups));
  client_config.attempt_budget_us = args.get_u64("budget-us", 2'000'000);
  for (const auto& replica : fleet.replicas()) {
    client_config.replicas.push_back(
        {replica.replica_id, replica.group, "127.0.0.1", replica.port});
  }
  fleet::FleetClient client(std::move(client_config), clock);

  // Optional replica-granularity chaos schedule, delivered with real
  // process-level hooks (SIGKILL / SIGSTOP+SIGCONT / on-disk corruption).
  std::optional<fleet::ReplicaChaos> chaos;
  std::vector<std::pair<pid_t, std::uint64_t>> paused;  // pid, resume at us
  if (const auto plan_spec = args.get("chaos-plan")) {
    std::vector<fleet::ReplicaTarget> targets;
    for (const auto& replica : fleet.replicas()) {
      targets.push_back({replica.replica_id,
                         "group" + std::to_string(replica.group)});
    }
    fleet::ChaosHooks hooks;
    hooks.kill = [&fleet](const fleet::ReplicaTarget& target) {
      for (auto& replica : fleet.replicas()) {
        if (replica.replica_id == target.replica_id) fleet.kill_replica(replica);
      }
    };
    hooks.brownout = [&fleet, &paused, &clock](
                         const fleet::ReplicaTarget& target,
                         std::uint64_t pause_us) {
      for (auto& replica : fleet.replicas()) {
        if (replica.replica_id == target.replica_id && replica.alive) {
          ::kill(replica.pid, SIGSTOP);
          paused.emplace_back(replica.pid, clock.now_us() + pause_us);
        }
      }
    };
    hooks.corrupt_snapshot = [&fleet, &tenant](
                                 const fleet::ReplicaTarget& target) {
      for (auto& replica : fleet.replicas()) {
        if (replica.replica_id != target.replica_id) continue;
        const auto snap = replica.snapshot_dir + "/" + tenant + ".snap";
        if (std::filesystem::exists(snap)) {
          fleet::corrupt_snapshot_byte(snap, 64);
        }
      }
    };
    chaos.emplace(fault::parse_fault_plan(*plan_spec,
                                          args.get_u64("chaos-seed", 0xC405)),
                  std::move(targets), std::move(hooks), clock);
    chaos->arm();
  }

  // The storm.  Baseline answers recorded from every served response: by
  // Lemma 4.9 they are the answers, whoever served them.
  std::map<std::uint64_t, bool> baseline;
  const util::Prf items(args.get_u64("seed", 0xC0DE) ^ 0xD811);
  ReplicaProcess* victim = nullptr;
  for (std::uint64_t q = 0; q < queries; ++q) {
    if (q == kill_after) {
      // Kill the tenant's home-group replica: the next queries must fail
      // over to a sibling mid-storm.
      const auto home = client.map().group_of(tenant);
      for (auto& replica : fleet.replicas()) {
        if (replica.group == home && replica.alive) {
          victim = &replica;
          fleet.kill_replica(replica);
          break;
        }
      }
    }
    if (chaos && q % 25 == 0) chaos->tick();
    const auto now = clock.now_us();
    for (auto it = paused.begin(); it != paused.end();) {
      if (now >= it->second) {
        ::kill(it->first, SIGCONT);
        it = paused.erase(it);
      } else {
        ++it;
      }
    }
    const auto item = drill_item(items, q, items_max);
    const auto result = client.query(tenant, item);
    if ((result.disposition == fleet::Disposition::kOk ||
         result.disposition == fleet::Disposition::kFailedOver)) {
      baseline.emplace(item, result.answer);
    }
  }
  for (const auto& [pid, resume_at] : paused) ::kill(pid, SIGCONT);
  paused.clear();

  // Snapshot-shipped bootstrap: replacement hydrates from a survivor's
  // verified .snap, never from the victim's possibly-corrupt directory.
  const ReplicaProcess* survivor = nullptr;
  for (const auto& replica : fleet.replicas()) {
    if (replica.alive) {
      survivor = &replica;
      break;
    }
  }
  if (survivor == nullptr) {
    std::cerr << "no survivor to ship a snapshot from\n";
    return 1;
  }
  const std::string replacement_dir = work_dir + "/replacement";
  const auto shipped = fleet::ship_snapshot(
      survivor->snapshot_dir + "/" + tenant + ".snap", replacement_dir, tenant);
  if (args.get("corrupt-shipment")) {
    // Chaos in flight: the replacement must typed-reject the shipment and
    // fall back to a live warm-up — slower, but never served.
    fleet::corrupt_snapshot_byte(shipped.path, 64);
  }
  const std::uint64_t replacement_group =
      victim != nullptr ? victim->group : survivor->group;
  const std::uint64_t replacement_id = 100 + replacement_group;
  const auto bootstrap_start_us = clock.now_us();
  auto& replacement =
      fleet.spawn(cli, serve_flags(replacement_dir, replacement_id),
                  replacement_id, replacement_group, replacement_dir, 30'000);
  const bool replacement_warm = fleet::wait_ready(
      "127.0.0.1", replacement.port, {tenant}, 30'000'000, clock);
  const auto bootstrap_us = clock.now_us() - bootstrap_start_us;

  // Digest-identical verification: the replacement must reproduce every
  // baseline answer, byte for byte.
  std::uint64_t verified = 0;
  std::uint64_t mismatched = 0;
  if (replacement_warm) {
    net::Client direct("127.0.0.1", replacement.port);
    std::uint64_t request_id = 1;
    for (const auto& [item, answer] : baseline) {
      net::RequestFrame request;
      request.request_id = request_id++;
      request.item = item;
      request.tenant = tenant;
      const auto response = direct.call(request);
      if (response.status == net::WireStatus::kOk &&
          (response.answer != 0) == answer) {
        ++verified;
      } else {
        ++mismatched;
      }
    }
  }

  // Cross-replica consistency over everyone still serving.
  std::vector<fleet::CheckerEndpoint> endpoints;
  for (const auto& replica : fleet.replicas()) {
    if (replica.alive) {
      endpoints.push_back({replica.replica_id, "127.0.0.1", replica.port});
    }
  }
  fleet::ConsistencyChecker checker(std::move(endpoints));
  for (std::uint64_t i = 0; i < check_items; ++i) {
    checker.check(tenant, drill_item(items, i, items_max));
  }

  const auto stats = client.stats();
  const auto& report = checker.report();
  const bool conserved = stats.conserved();
  const bool served_everything =
      stats.by_disposition[static_cast<std::size_t>(fleet::Disposition::kOk)] +
          stats.by_disposition[static_cast<std::size_t>(
              fleet::Disposition::kFailedOver)] >
      0;
  const bool ok = conserved && report.consistent() && replacement_warm &&
                  mismatched == 0 && served_everything;

  if (json) {
    std::cout << "{\"offered\":" << stats.offered;
    for (std::size_t d = 0; d < fleet::kDispositionCount; ++d) {
      std::cout << ",\"" << fleet::disposition_name(
                       static_cast<fleet::Disposition>(d))
                << "\":" << stats.by_disposition[d];
    }
    std::cout << ",\"conserved\":" << (conserved ? "true" : "false")
              << ",\"failover_attempts\":" << stats.failover_attempts
              << ",\"checks\":" << report.checks
              << ",\"divergences\":" << report.divergences
              << ",\"unavailable\":" << report.unavailable
              << ",\"replacement_warm\":" << (replacement_warm ? "true" : "false")
              << ",\"replacement_verified\":" << verified
              << ",\"replacement_mismatched\":" << mismatched
              << ",\"initial_warm_us\":" << initial_warm_us
              << ",\"bootstrap_us\":" << bootstrap_us
              << ",\"shipped_bytes\":" << shipped.bytes
              << ",\"chaos_events\":" << (chaos ? chaos->events().size() : 0)
              << "}" << std::endl;
  } else {
    util::Table table({"metric", "value"});
    table.row().cell("groups / queries").cell(std::to_string(groups) + " / " +
                                              std::to_string(queries));
    table.row().cell("offered").cell(stats.offered);
    std::string by_disposition;
    for (std::size_t d = 0; d < fleet::kDispositionCount; ++d) {
      if (stats.by_disposition[d] == 0) continue;
      if (!by_disposition.empty()) by_disposition += ", ";
      by_disposition += std::string(fleet::disposition_name(
                            static_cast<fleet::Disposition>(d))) +
                        "=" + std::to_string(stats.by_disposition[d]);
    }
    table.row().cell("by disposition").cell(
        by_disposition.empty() ? "(none)" : by_disposition);
    table.row().cell("fleet conservation").cell(conserved ? "HOLDS"
                                                          : "VIOLATED");
    table.row().cell("failover attempts / backoff slept us")
        .cell(std::to_string(stats.failover_attempts) + " / " +
              std::to_string(stats.backoff_sleep_us));
    table.row().cell("checker probes / comparisons")
        .cell(std::to_string(report.checks) + " / " +
              std::to_string(report.comparisons));
    table.row().cell("divergences (must be 0)").cell(report.divergences);
    table.row().cell("checker unavailable").cell(report.unavailable);
    table.row().cell("replacement warm").cell(replacement_warm ? "yes" : "NO");
    table.row().cell("replacement answers verified / mismatched")
        .cell(std::to_string(verified) + " / " + std::to_string(mismatched));
    table.row().cell("initial spawn-to-warm us").cell(initial_warm_us);
    table.row().cell("replacement bootstrap-to-warm us").cell(bootstrap_us);
    table.row().cell("snapshot shipped bytes").cell(shipped.bytes);
    if (chaos) {
      table.row().cell("chaos events").cell(chaos->events().size());
    }
    table.print(std::cout, "fleet drill");
    std::cout << (ok ? "DRILL PASSED" : "DRILL FAILED") << std::endl;
  }
  return ok ? 0 : 2;
}

int cmd_check(const Args& args) {
  const auto targets_csv = args.require("targets");
  const auto tenant = args.get("tenant").value_or("default");
  const auto queries = args.get_u64("queries", 64);
  const auto items_max = std::max<std::uint64_t>(1, args.get_u64("items-max", 64));
  const bool json = args.get("json").has_value();

  std::vector<fleet::CheckerEndpoint> endpoints;
  std::stringstream ss(targets_csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const auto colon = token.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("--targets entries are host:port, got: " +
                                  token);
    }
    fleet::CheckerEndpoint endpoint;
    endpoint.replica_id = endpoints.size() + 1;
    endpoint.host = token.substr(0, colon);
    endpoint.port =
        static_cast<std::uint16_t>(std::stoul(token.substr(colon + 1)));
    endpoints.push_back(std::move(endpoint));
  }

  fleet::ConsistencyChecker checker(std::move(endpoints));
  const util::Prf items(args.get_u64("seed", 0xC0DE) ^ 0xD811);
  for (std::uint64_t i = 0; i < queries; ++i) {
    checker.check(tenant, drill_item(items, i, items_max));
  }
  const auto& report = checker.report();
  if (json) {
    std::cout << "{\"checks\":" << report.checks
              << ",\"comparisons\":" << report.comparisons
              << ",\"divergences\":" << report.divergences
              << ",\"unavailable\":" << report.unavailable
              << ",\"non_ok\":" << report.non_ok << "}" << std::endl;
  } else {
    util::Table table({"metric", "value"});
    table.row().cell("probes").cell(report.checks);
    table.row().cell("comparisons").cell(report.comparisons);
    table.row().cell("divergences (must be 0)").cell(report.divergences);
    table.row().cell("unavailable").cell(report.unavailable);
    table.row().cell("non-answer statuses").cell(report.non_ok);
    table.print(std::cout, "fleet check");
    for (const auto& divergence : report.details) {
      std::cerr << "DIVERGENCE tenant=" << divergence.tenant
                << " item=" << divergence.item << ":";
      for (const auto& seen : divergence.observations) {
        std::cerr << " replica" << seen.replica_id << "="
                  << (seen.reachable
                          ? std::string(net::wire_status_name(seen.status)) +
                                "/" + (seen.answer ? "1" : "0")
                          : std::string("unreachable"));
      }
      std::cerr << "\n";
    }
  }
  return report.consistent() ? 0 : 2;
}

int cmd_map(const Args& args) {
  const auto groups = args.get_u64("groups", 3);
  fleet::FleetMapConfig config;
  config.vnodes = static_cast<std::size_t>(args.get_u64("vnodes", 64));
  config.seed = args.get_u64("ring-seed", 0xF1EE7);
  fleet::FleetMap map(config);
  for (std::uint64_t g = 0; g < groups; ++g) map.add_group(g);

  util::Table table({"tenant", "home group", "failover order"});
  std::stringstream ss(args.get("tenant-list").value_or("default"));
  std::string tenant;
  while (std::getline(ss, tenant, ',')) {
    if (tenant.empty()) continue;
    map.track(tenant);
    std::string order;
    for (const auto group : map.preference_of(tenant)) {
      if (!order.empty()) order += " -> ";
      order += std::to_string(group);
    }
    table.row().cell(tenant).cell(map.group_of(tenant)).cell(order);
  }
  table.print(std::cout, "fleet map (seed " + std::to_string(config.seed) +
                             ", " + std::to_string(config.vnodes) +
                             " vnodes)");
  return 0;
}

void usage() {
  std::cerr <<
      "usage: lcaknap_fleet <drill|check|map> [flags]\n"
      "  drill --cli PATH --in FILE [--groups 3] [--queries 400]\n"
      "        [--items-max 64] [--kill-after Q] [--tenant ID]\n"
      "        [--eps E] [--seed S] [--tape T] [--work-dir DIR]\n"
      "        [--budget-us B] [--max-attempts N] [--vnodes V] [--ring-seed S]\n"
      "        [--chaos-plan SPEC] [--chaos-seed S] [--corrupt-shipment]\n"
      "        [--check-items N] [--json]\n"
      "  check --targets host:port,host:port [--tenant ID] [--queries 64]\n"
      "        [--items-max 64] [--seed S] [--json]\n"
      "  map   --groups N [--vnodes 64] [--ring-seed S] --tenant-list a,b,c\n"
      "drill spawns one 'lcaknap_cli serve --listen' replica per group, storms\n"
      "queries through the failover client, SIGKILLs the serving replica\n"
      "mid-storm, bootstraps a replacement from a snapshot shipped off a\n"
      "survivor, and asserts: fleet conservation, zero cross-replica answer\n"
      "divergences, and a digest-identical replacement (docs/FLEET.md).\n"
      "Exit: 0 ok, 1 usage/spawn error, 2 a drilled invariant failed.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "drill") return cmd_drill(args);
    if (command == "check") return cmd_check(args);
    if (command == "map") return cmd_map(args);
    usage();
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    usage();
    return 1;
  }
}
