
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oracle/access.cpp" "src/oracle/CMakeFiles/lcaknap_oracle.dir/access.cpp.o" "gcc" "src/oracle/CMakeFiles/lcaknap_oracle.dir/access.cpp.o.d"
  "/root/repo/src/oracle/flaky.cpp" "src/oracle/CMakeFiles/lcaknap_oracle.dir/flaky.cpp.o" "gcc" "src/oracle/CMakeFiles/lcaknap_oracle.dir/flaky.cpp.o.d"
  "/root/repo/src/oracle/latency_model.cpp" "src/oracle/CMakeFiles/lcaknap_oracle.dir/latency_model.cpp.o" "gcc" "src/oracle/CMakeFiles/lcaknap_oracle.dir/latency_model.cpp.o.d"
  "/root/repo/src/oracle/sharded.cpp" "src/oracle/CMakeFiles/lcaknap_oracle.dir/sharded.cpp.o" "gcc" "src/oracle/CMakeFiles/lcaknap_oracle.dir/sharded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/knapsack/CMakeFiles/lcaknap_knapsack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
