file(REMOVE_RECURSE
  "liblcaknap_oracle.a"
)
