file(REMOVE_RECURSE
  "CMakeFiles/lcaknap_oracle.dir/access.cpp.o"
  "CMakeFiles/lcaknap_oracle.dir/access.cpp.o.d"
  "CMakeFiles/lcaknap_oracle.dir/flaky.cpp.o"
  "CMakeFiles/lcaknap_oracle.dir/flaky.cpp.o.d"
  "CMakeFiles/lcaknap_oracle.dir/latency_model.cpp.o"
  "CMakeFiles/lcaknap_oracle.dir/latency_model.cpp.o.d"
  "CMakeFiles/lcaknap_oracle.dir/sharded.cpp.o"
  "CMakeFiles/lcaknap_oracle.dir/sharded.cpp.o.d"
  "liblcaknap_oracle.a"
  "liblcaknap_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcaknap_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
