# Empty dependencies file for lcaknap_oracle.
# This may be replaced when dependencies are built.
