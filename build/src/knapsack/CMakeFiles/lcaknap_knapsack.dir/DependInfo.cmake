
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knapsack/generators.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/generators.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/generators.cpp.o.d"
  "/root/repo/src/knapsack/instance.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/instance.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/instance.cpp.o.d"
  "/root/repo/src/knapsack/solvers/branch_bound.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/branch_bound.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/branch_bound.cpp.o.d"
  "/root/repo/src/knapsack/solvers/brute_force.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/brute_force.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/brute_force.cpp.o.d"
  "/root/repo/src/knapsack/solvers/dp.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/dp.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/dp.cpp.o.d"
  "/root/repo/src/knapsack/solvers/fptas.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/fptas.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/fptas.cpp.o.d"
  "/root/repo/src/knapsack/solvers/greedy.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/greedy.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/greedy.cpp.o.d"
  "/root/repo/src/knapsack/solvers/meet_in_middle.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/meet_in_middle.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/meet_in_middle.cpp.o.d"
  "/root/repo/src/knapsack/solvers/solve.cpp" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/solve.cpp.o" "gcc" "src/knapsack/CMakeFiles/lcaknap_knapsack.dir/solvers/solve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
