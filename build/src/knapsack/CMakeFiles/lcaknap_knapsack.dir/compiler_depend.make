# Empty compiler generated dependencies file for lcaknap_knapsack.
# This may be replaced when dependencies are built.
