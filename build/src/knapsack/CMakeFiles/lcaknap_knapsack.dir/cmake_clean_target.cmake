file(REMOVE_RECURSE
  "liblcaknap_knapsack.a"
)
