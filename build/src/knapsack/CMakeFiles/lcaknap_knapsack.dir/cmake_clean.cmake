file(REMOVE_RECURSE
  "CMakeFiles/lcaknap_knapsack.dir/generators.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/generators.cpp.o.d"
  "CMakeFiles/lcaknap_knapsack.dir/instance.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/instance.cpp.o.d"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/branch_bound.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/branch_bound.cpp.o.d"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/brute_force.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/brute_force.cpp.o.d"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/dp.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/dp.cpp.o.d"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/fptas.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/fptas.cpp.o.d"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/greedy.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/greedy.cpp.o.d"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/meet_in_middle.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/meet_in_middle.cpp.o.d"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/solve.cpp.o"
  "CMakeFiles/lcaknap_knapsack.dir/solvers/solve.cpp.o.d"
  "liblcaknap_knapsack.a"
  "liblcaknap_knapsack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcaknap_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
