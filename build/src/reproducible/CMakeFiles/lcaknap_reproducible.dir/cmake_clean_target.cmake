file(REMOVE_RECURSE
  "liblcaknap_reproducible.a"
)
