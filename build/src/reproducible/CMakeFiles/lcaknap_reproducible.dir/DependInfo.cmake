
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reproducible/heavy_hitters.cpp" "src/reproducible/CMakeFiles/lcaknap_reproducible.dir/heavy_hitters.cpp.o" "gcc" "src/reproducible/CMakeFiles/lcaknap_reproducible.dir/heavy_hitters.cpp.o.d"
  "/root/repo/src/reproducible/rmedian.cpp" "src/reproducible/CMakeFiles/lcaknap_reproducible.dir/rmedian.cpp.o" "gcc" "src/reproducible/CMakeFiles/lcaknap_reproducible.dir/rmedian.cpp.o.d"
  "/root/repo/src/reproducible/rquantile.cpp" "src/reproducible/CMakeFiles/lcaknap_reproducible.dir/rquantile.cpp.o" "gcc" "src/reproducible/CMakeFiles/lcaknap_reproducible.dir/rquantile.cpp.o.d"
  "/root/repo/src/reproducible/rstat.cpp" "src/reproducible/CMakeFiles/lcaknap_reproducible.dir/rstat.cpp.o" "gcc" "src/reproducible/CMakeFiles/lcaknap_reproducible.dir/rstat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
