file(REMOVE_RECURSE
  "CMakeFiles/lcaknap_reproducible.dir/heavy_hitters.cpp.o"
  "CMakeFiles/lcaknap_reproducible.dir/heavy_hitters.cpp.o.d"
  "CMakeFiles/lcaknap_reproducible.dir/rmedian.cpp.o"
  "CMakeFiles/lcaknap_reproducible.dir/rmedian.cpp.o.d"
  "CMakeFiles/lcaknap_reproducible.dir/rquantile.cpp.o"
  "CMakeFiles/lcaknap_reproducible.dir/rquantile.cpp.o.d"
  "CMakeFiles/lcaknap_reproducible.dir/rstat.cpp.o"
  "CMakeFiles/lcaknap_reproducible.dir/rstat.cpp.o.d"
  "liblcaknap_reproducible.a"
  "liblcaknap_reproducible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcaknap_reproducible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
