# Empty dependencies file for lcaknap_reproducible.
# This may be replaced when dependencies are built.
