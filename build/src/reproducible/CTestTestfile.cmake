# CMake generated Testfile for 
# Source directory: /root/repo/src/reproducible
# Build directory: /root/repo/build/src/reproducible
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
