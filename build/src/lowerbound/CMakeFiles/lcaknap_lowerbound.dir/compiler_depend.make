# Empty compiler generated dependencies file for lcaknap_lowerbound.
# This may be replaced when dependencies are built.
