
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowerbound/greedy_sim_lca.cpp" "src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/greedy_sim_lca.cpp.o" "gcc" "src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/greedy_sim_lca.cpp.o.d"
  "/root/repo/src/lowerbound/maximal_hard.cpp" "src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/maximal_hard.cpp.o" "gcc" "src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/maximal_hard.cpp.o.d"
  "/root/repo/src/lowerbound/or_reduction.cpp" "src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/or_reduction.cpp.o" "gcc" "src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/or_reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oracle/CMakeFiles/lcaknap_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/knapsack/CMakeFiles/lcaknap_knapsack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
