file(REMOVE_RECURSE
  "liblcaknap_lowerbound.a"
)
