file(REMOVE_RECURSE
  "CMakeFiles/lcaknap_lowerbound.dir/greedy_sim_lca.cpp.o"
  "CMakeFiles/lcaknap_lowerbound.dir/greedy_sim_lca.cpp.o.d"
  "CMakeFiles/lcaknap_lowerbound.dir/maximal_hard.cpp.o"
  "CMakeFiles/lcaknap_lowerbound.dir/maximal_hard.cpp.o.d"
  "CMakeFiles/lcaknap_lowerbound.dir/or_reduction.cpp.o"
  "CMakeFiles/lcaknap_lowerbound.dir/or_reduction.cpp.o.d"
  "liblcaknap_lowerbound.a"
  "liblcaknap_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcaknap_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
