# Empty dependencies file for lcaknap_util.
# This may be replaced when dependencies are built.
