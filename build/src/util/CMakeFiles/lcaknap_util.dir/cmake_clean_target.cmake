file(REMOVE_RECURSE
  "liblcaknap_util.a"
)
