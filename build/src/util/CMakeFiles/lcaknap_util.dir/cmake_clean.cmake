file(REMOVE_RECURSE
  "CMakeFiles/lcaknap_util.dir/alias_sampler.cpp.o"
  "CMakeFiles/lcaknap_util.dir/alias_sampler.cpp.o.d"
  "CMakeFiles/lcaknap_util.dir/histogram.cpp.o"
  "CMakeFiles/lcaknap_util.dir/histogram.cpp.o.d"
  "CMakeFiles/lcaknap_util.dir/rational.cpp.o"
  "CMakeFiles/lcaknap_util.dir/rational.cpp.o.d"
  "CMakeFiles/lcaknap_util.dir/rng.cpp.o"
  "CMakeFiles/lcaknap_util.dir/rng.cpp.o.d"
  "CMakeFiles/lcaknap_util.dir/stats.cpp.o"
  "CMakeFiles/lcaknap_util.dir/stats.cpp.o.d"
  "CMakeFiles/lcaknap_util.dir/table.cpp.o"
  "CMakeFiles/lcaknap_util.dir/table.cpp.o.d"
  "CMakeFiles/lcaknap_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lcaknap_util.dir/thread_pool.cpp.o.d"
  "liblcaknap_util.a"
  "liblcaknap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcaknap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
