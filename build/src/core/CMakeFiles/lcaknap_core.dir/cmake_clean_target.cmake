file(REMOVE_RECURSE
  "liblcaknap_core.a"
)
