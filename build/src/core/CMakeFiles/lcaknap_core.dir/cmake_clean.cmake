file(REMOVE_RECURSE
  "CMakeFiles/lcaknap_core.dir/consistency.cpp.o"
  "CMakeFiles/lcaknap_core.dir/consistency.cpp.o.d"
  "CMakeFiles/lcaknap_core.dir/convert_greedy.cpp.o"
  "CMakeFiles/lcaknap_core.dir/convert_greedy.cpp.o.d"
  "CMakeFiles/lcaknap_core.dir/full_read_lca.cpp.o"
  "CMakeFiles/lcaknap_core.dir/full_read_lca.cpp.o.d"
  "CMakeFiles/lcaknap_core.dir/lca_kp.cpp.o"
  "CMakeFiles/lcaknap_core.dir/lca_kp.cpp.o.d"
  "CMakeFiles/lcaknap_core.dir/mapping_greedy.cpp.o"
  "CMakeFiles/lcaknap_core.dir/mapping_greedy.cpp.o.d"
  "CMakeFiles/lcaknap_core.dir/prior_lca.cpp.o"
  "CMakeFiles/lcaknap_core.dir/prior_lca.cpp.o.d"
  "CMakeFiles/lcaknap_core.dir/reproducible_large.cpp.o"
  "CMakeFiles/lcaknap_core.dir/reproducible_large.cpp.o.d"
  "CMakeFiles/lcaknap_core.dir/serving_sim.cpp.o"
  "CMakeFiles/lcaknap_core.dir/serving_sim.cpp.o.d"
  "liblcaknap_core.a"
  "liblcaknap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcaknap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
