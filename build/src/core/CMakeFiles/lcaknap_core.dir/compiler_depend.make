# Empty compiler generated dependencies file for lcaknap_core.
# This may be replaced when dependencies are built.
