
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/consistency.cpp" "src/core/CMakeFiles/lcaknap_core.dir/consistency.cpp.o" "gcc" "src/core/CMakeFiles/lcaknap_core.dir/consistency.cpp.o.d"
  "/root/repo/src/core/convert_greedy.cpp" "src/core/CMakeFiles/lcaknap_core.dir/convert_greedy.cpp.o" "gcc" "src/core/CMakeFiles/lcaknap_core.dir/convert_greedy.cpp.o.d"
  "/root/repo/src/core/full_read_lca.cpp" "src/core/CMakeFiles/lcaknap_core.dir/full_read_lca.cpp.o" "gcc" "src/core/CMakeFiles/lcaknap_core.dir/full_read_lca.cpp.o.d"
  "/root/repo/src/core/lca_kp.cpp" "src/core/CMakeFiles/lcaknap_core.dir/lca_kp.cpp.o" "gcc" "src/core/CMakeFiles/lcaknap_core.dir/lca_kp.cpp.o.d"
  "/root/repo/src/core/mapping_greedy.cpp" "src/core/CMakeFiles/lcaknap_core.dir/mapping_greedy.cpp.o" "gcc" "src/core/CMakeFiles/lcaknap_core.dir/mapping_greedy.cpp.o.d"
  "/root/repo/src/core/prior_lca.cpp" "src/core/CMakeFiles/lcaknap_core.dir/prior_lca.cpp.o" "gcc" "src/core/CMakeFiles/lcaknap_core.dir/prior_lca.cpp.o.d"
  "/root/repo/src/core/reproducible_large.cpp" "src/core/CMakeFiles/lcaknap_core.dir/reproducible_large.cpp.o" "gcc" "src/core/CMakeFiles/lcaknap_core.dir/reproducible_large.cpp.o.d"
  "/root/repo/src/core/serving_sim.cpp" "src/core/CMakeFiles/lcaknap_core.dir/serving_sim.cpp.o" "gcc" "src/core/CMakeFiles/lcaknap_core.dir/serving_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iky/CMakeFiles/lcaknap_iky.dir/DependInfo.cmake"
  "/root/repo/build/src/reproducible/CMakeFiles/lcaknap_reproducible.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/lcaknap_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/knapsack/CMakeFiles/lcaknap_knapsack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
