file(REMOVE_RECURSE
  "liblcaknap_iky.a"
)
