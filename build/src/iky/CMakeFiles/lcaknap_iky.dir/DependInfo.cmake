
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iky/construct.cpp" "src/iky/CMakeFiles/lcaknap_iky.dir/construct.cpp.o" "gcc" "src/iky/CMakeFiles/lcaknap_iky.dir/construct.cpp.o.d"
  "/root/repo/src/iky/efficiency_domain.cpp" "src/iky/CMakeFiles/lcaknap_iky.dir/efficiency_domain.cpp.o" "gcc" "src/iky/CMakeFiles/lcaknap_iky.dir/efficiency_domain.cpp.o.d"
  "/root/repo/src/iky/eps.cpp" "src/iky/CMakeFiles/lcaknap_iky.dir/eps.cpp.o" "gcc" "src/iky/CMakeFiles/lcaknap_iky.dir/eps.cpp.o.d"
  "/root/repo/src/iky/partition.cpp" "src/iky/CMakeFiles/lcaknap_iky.dir/partition.cpp.o" "gcc" "src/iky/CMakeFiles/lcaknap_iky.dir/partition.cpp.o.d"
  "/root/repo/src/iky/value_approx.cpp" "src/iky/CMakeFiles/lcaknap_iky.dir/value_approx.cpp.o" "gcc" "src/iky/CMakeFiles/lcaknap_iky.dir/value_approx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/knapsack/CMakeFiles/lcaknap_knapsack.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/lcaknap_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
