file(REMOVE_RECURSE
  "CMakeFiles/lcaknap_iky.dir/construct.cpp.o"
  "CMakeFiles/lcaknap_iky.dir/construct.cpp.o.d"
  "CMakeFiles/lcaknap_iky.dir/efficiency_domain.cpp.o"
  "CMakeFiles/lcaknap_iky.dir/efficiency_domain.cpp.o.d"
  "CMakeFiles/lcaknap_iky.dir/eps.cpp.o"
  "CMakeFiles/lcaknap_iky.dir/eps.cpp.o.d"
  "CMakeFiles/lcaknap_iky.dir/partition.cpp.o"
  "CMakeFiles/lcaknap_iky.dir/partition.cpp.o.d"
  "CMakeFiles/lcaknap_iky.dir/value_approx.cpp.o"
  "CMakeFiles/lcaknap_iky.dir/value_approx.cpp.o.d"
  "liblcaknap_iky.a"
  "liblcaknap_iky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcaknap_iky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
