# Empty dependencies file for lcaknap_iky.
# This may be replaced when dependencies are built.
