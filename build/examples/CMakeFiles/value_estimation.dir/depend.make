# Empty dependencies file for value_estimation.
# This may be replaced when dependencies are built.
