file(REMOVE_RECURSE
  "CMakeFiles/value_estimation.dir/value_estimation.cpp.o"
  "CMakeFiles/value_estimation.dir/value_estimation.cpp.o.d"
  "value_estimation"
  "value_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
