# Empty dependencies file for distributed_serving.
# This may be replaced when dependencies are built.
