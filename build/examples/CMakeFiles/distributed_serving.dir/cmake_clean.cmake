file(REMOVE_RECURSE
  "CMakeFiles/distributed_serving.dir/distributed_serving.cpp.o"
  "CMakeFiles/distributed_serving.dir/distributed_serving.cpp.o.d"
  "distributed_serving"
  "distributed_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
