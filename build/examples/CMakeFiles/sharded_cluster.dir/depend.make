# Empty dependencies file for sharded_cluster.
# This may be replaced when dependencies are built.
