
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ad_allocation.cpp" "examples/CMakeFiles/ad_allocation.dir/ad_allocation.cpp.o" "gcc" "examples/CMakeFiles/ad_allocation.dir/ad_allocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lcaknap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/iky/CMakeFiles/lcaknap_iky.dir/DependInfo.cmake"
  "/root/repo/build/src/reproducible/CMakeFiles/lcaknap_reproducible.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/lcaknap_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/knapsack/CMakeFiles/lcaknap_knapsack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
