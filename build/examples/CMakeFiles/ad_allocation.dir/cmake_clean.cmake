file(REMOVE_RECURSE
  "CMakeFiles/ad_allocation.dir/ad_allocation.cpp.o"
  "CMakeFiles/ad_allocation.dir/ad_allocation.cpp.o.d"
  "ad_allocation"
  "ad_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
