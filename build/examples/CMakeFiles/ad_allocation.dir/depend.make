# Empty dependencies file for ad_allocation.
# This may be replaced when dependencies are built.
