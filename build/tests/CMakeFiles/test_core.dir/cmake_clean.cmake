file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_baselines.cpp.o"
  "CMakeFiles/test_core.dir/core/test_baselines.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_consistency.cpp.o"
  "CMakeFiles/test_core.dir/core/test_consistency.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_convert_greedy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_convert_greedy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lca_kp.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lca_kp.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lca_kp_singleton.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lca_kp_singleton.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_prior_lca.cpp.o"
  "CMakeFiles/test_core.dir/core/test_prior_lca.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_reproducible_large.cpp.o"
  "CMakeFiles/test_core.dir/core/test_reproducible_large.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_serving_sim.cpp.o"
  "CMakeFiles/test_core.dir/core/test_serving_sim.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
