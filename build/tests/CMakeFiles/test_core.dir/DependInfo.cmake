
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_baselines.cpp" "tests/CMakeFiles/test_core.dir/core/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_baselines.cpp.o.d"
  "/root/repo/tests/core/test_consistency.cpp" "tests/CMakeFiles/test_core.dir/core/test_consistency.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_consistency.cpp.o.d"
  "/root/repo/tests/core/test_convert_greedy.cpp" "tests/CMakeFiles/test_core.dir/core/test_convert_greedy.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_convert_greedy.cpp.o.d"
  "/root/repo/tests/core/test_lca_kp.cpp" "tests/CMakeFiles/test_core.dir/core/test_lca_kp.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_lca_kp.cpp.o.d"
  "/root/repo/tests/core/test_lca_kp_singleton.cpp" "tests/CMakeFiles/test_core.dir/core/test_lca_kp_singleton.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_lca_kp_singleton.cpp.o.d"
  "/root/repo/tests/core/test_prior_lca.cpp" "tests/CMakeFiles/test_core.dir/core/test_prior_lca.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_prior_lca.cpp.o.d"
  "/root/repo/tests/core/test_reproducible_large.cpp" "tests/CMakeFiles/test_core.dir/core/test_reproducible_large.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_reproducible_large.cpp.o.d"
  "/root/repo/tests/core/test_serving_sim.cpp" "tests/CMakeFiles/test_core.dir/core/test_serving_sim.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_serving_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lcaknap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/iky/CMakeFiles/lcaknap_iky.dir/DependInfo.cmake"
  "/root/repo/build/src/reproducible/CMakeFiles/lcaknap_reproducible.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/lcaknap_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/knapsack/CMakeFiles/lcaknap_knapsack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
