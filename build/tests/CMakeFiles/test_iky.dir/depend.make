# Empty dependencies file for test_iky.
# This may be replaced when dependencies are built.
