file(REMOVE_RECURSE
  "CMakeFiles/test_iky.dir/iky/test_construct.cpp.o"
  "CMakeFiles/test_iky.dir/iky/test_construct.cpp.o.d"
  "CMakeFiles/test_iky.dir/iky/test_efficiency_domain.cpp.o"
  "CMakeFiles/test_iky.dir/iky/test_efficiency_domain.cpp.o.d"
  "CMakeFiles/test_iky.dir/iky/test_eps.cpp.o"
  "CMakeFiles/test_iky.dir/iky/test_eps.cpp.o.d"
  "CMakeFiles/test_iky.dir/iky/test_partition.cpp.o"
  "CMakeFiles/test_iky.dir/iky/test_partition.cpp.o.d"
  "CMakeFiles/test_iky.dir/iky/test_value_approx.cpp.o"
  "CMakeFiles/test_iky.dir/iky/test_value_approx.cpp.o.d"
  "test_iky"
  "test_iky.pdb"
  "test_iky[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
