file(REMOVE_RECURSE
  "CMakeFiles/test_reproducible.dir/reproducible/test_heavy_hitters.cpp.o"
  "CMakeFiles/test_reproducible.dir/reproducible/test_heavy_hitters.cpp.o.d"
  "CMakeFiles/test_reproducible.dir/reproducible/test_rmedian.cpp.o"
  "CMakeFiles/test_reproducible.dir/reproducible/test_rmedian.cpp.o.d"
  "CMakeFiles/test_reproducible.dir/reproducible/test_rquantile.cpp.o"
  "CMakeFiles/test_reproducible.dir/reproducible/test_rquantile.cpp.o.d"
  "CMakeFiles/test_reproducible.dir/reproducible/test_rstat.cpp.o"
  "CMakeFiles/test_reproducible.dir/reproducible/test_rstat.cpp.o.d"
  "test_reproducible"
  "test_reproducible.pdb"
  "test_reproducible[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reproducible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
