# Empty dependencies file for test_reproducible.
# This may be replaced when dependencies are built.
