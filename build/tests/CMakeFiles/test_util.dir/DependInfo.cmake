
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_alias_sampler.cpp" "tests/CMakeFiles/test_util.dir/util/test_alias_sampler.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_alias_sampler.cpp.o.d"
  "/root/repo/tests/util/test_histogram.cpp" "tests/CMakeFiles/test_util.dir/util/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_histogram.cpp.o.d"
  "/root/repo/tests/util/test_iterated_log.cpp" "tests/CMakeFiles/test_util.dir/util/test_iterated_log.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_iterated_log.cpp.o.d"
  "/root/repo/tests/util/test_rational.cpp" "tests/CMakeFiles/test_util.dir/util/test_rational.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rational.cpp.o.d"
  "/root/repo/tests/util/test_rational_property.cpp" "tests/CMakeFiles/test_util.dir/util/test_rational_property.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rational_property.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_rng_statistics.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng_statistics.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng_statistics.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/CMakeFiles/test_util.dir/util/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lcaknap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/lcaknap_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/iky/CMakeFiles/lcaknap_iky.dir/DependInfo.cmake"
  "/root/repo/build/src/reproducible/CMakeFiles/lcaknap_reproducible.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/lcaknap_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/knapsack/CMakeFiles/lcaknap_knapsack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lcaknap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
