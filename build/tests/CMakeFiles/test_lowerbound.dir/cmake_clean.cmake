file(REMOVE_RECURSE
  "CMakeFiles/test_lowerbound.dir/lowerbound/test_greedy_sim_lca.cpp.o"
  "CMakeFiles/test_lowerbound.dir/lowerbound/test_greedy_sim_lca.cpp.o.d"
  "CMakeFiles/test_lowerbound.dir/lowerbound/test_maximal_hard.cpp.o"
  "CMakeFiles/test_lowerbound.dir/lowerbound/test_maximal_hard.cpp.o.d"
  "CMakeFiles/test_lowerbound.dir/lowerbound/test_or_reduction.cpp.o"
  "CMakeFiles/test_lowerbound.dir/lowerbound/test_or_reduction.cpp.o.d"
  "test_lowerbound"
  "test_lowerbound.pdb"
  "test_lowerbound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
