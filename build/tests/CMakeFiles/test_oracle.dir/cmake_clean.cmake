file(REMOVE_RECURSE
  "CMakeFiles/test_oracle.dir/oracle/test_access.cpp.o"
  "CMakeFiles/test_oracle.dir/oracle/test_access.cpp.o.d"
  "CMakeFiles/test_oracle.dir/oracle/test_flaky.cpp.o"
  "CMakeFiles/test_oracle.dir/oracle/test_flaky.cpp.o.d"
  "CMakeFiles/test_oracle.dir/oracle/test_sharded.cpp.o"
  "CMakeFiles/test_oracle.dir/oracle/test_sharded.cpp.o.d"
  "test_oracle"
  "test_oracle.pdb"
  "test_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
