file(REMOVE_RECURSE
  "CMakeFiles/test_knapsack.dir/knapsack/test_generators.cpp.o"
  "CMakeFiles/test_knapsack.dir/knapsack/test_generators.cpp.o.d"
  "CMakeFiles/test_knapsack.dir/knapsack/test_greedy.cpp.o"
  "CMakeFiles/test_knapsack.dir/knapsack/test_greedy.cpp.o.d"
  "CMakeFiles/test_knapsack.dir/knapsack/test_instance.cpp.o"
  "CMakeFiles/test_knapsack.dir/knapsack/test_instance.cpp.o.d"
  "CMakeFiles/test_knapsack.dir/knapsack/test_meet_in_middle.cpp.o"
  "CMakeFiles/test_knapsack.dir/knapsack/test_meet_in_middle.cpp.o.d"
  "CMakeFiles/test_knapsack.dir/knapsack/test_solver_cross.cpp.o"
  "CMakeFiles/test_knapsack.dir/knapsack/test_solver_cross.cpp.o.d"
  "CMakeFiles/test_knapsack.dir/knapsack/test_solvers.cpp.o"
  "CMakeFiles/test_knapsack.dir/knapsack/test_solvers.cpp.o.d"
  "test_knapsack"
  "test_knapsack.pdb"
  "test_knapsack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
