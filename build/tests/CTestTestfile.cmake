# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_knapsack[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_reproducible[1]_include.cmake")
include("/root/repo/build/tests/test_iky[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
