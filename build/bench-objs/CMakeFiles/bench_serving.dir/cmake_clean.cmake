file(REMOVE_RECURSE
  "../bench/bench_serving"
  "../bench/bench_serving.pdb"
  "CMakeFiles/bench_serving.dir/bench_serving.cpp.o"
  "CMakeFiles/bench_serving.dir/bench_serving.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
