# Empty dependencies file for bench_query_complexity.
# This may be replaced when dependencies are built.
