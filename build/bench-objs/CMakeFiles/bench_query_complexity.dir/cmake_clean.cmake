file(REMOVE_RECURSE
  "../bench/bench_query_complexity"
  "../bench/bench_query_complexity.pdb"
  "CMakeFiles/bench_query_complexity.dir/bench_query_complexity.cpp.o"
  "CMakeFiles/bench_query_complexity.dir/bench_query_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
