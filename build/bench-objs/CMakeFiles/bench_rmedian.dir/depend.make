# Empty dependencies file for bench_rmedian.
# This may be replaced when dependencies are built.
