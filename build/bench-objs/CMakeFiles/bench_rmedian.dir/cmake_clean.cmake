file(REMOVE_RECURSE
  "../bench/bench_rmedian"
  "../bench/bench_rmedian.pdb"
  "CMakeFiles/bench_rmedian.dir/bench_rmedian.cpp.o"
  "CMakeFiles/bench_rmedian.dir/bench_rmedian.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rmedian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
