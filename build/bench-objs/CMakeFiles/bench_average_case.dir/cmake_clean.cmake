file(REMOVE_RECURSE
  "../bench/bench_average_case"
  "../bench/bench_average_case.pdb"
  "CMakeFiles/bench_average_case.dir/bench_average_case.cpp.o"
  "CMakeFiles/bench_average_case.dir/bench_average_case.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_average_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
