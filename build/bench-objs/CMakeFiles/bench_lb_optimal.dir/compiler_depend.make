# Empty compiler generated dependencies file for bench_lb_optimal.
# This may be replaced when dependencies are built.
