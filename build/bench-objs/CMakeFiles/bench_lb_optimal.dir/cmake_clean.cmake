file(REMOVE_RECURSE
  "../bench/bench_lb_optimal"
  "../bench/bench_lb_optimal.pdb"
  "CMakeFiles/bench_lb_optimal.dir/bench_lb_optimal.cpp.o"
  "CMakeFiles/bench_lb_optimal.dir/bench_lb_optimal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
