file(REMOVE_RECURSE
  "../bench/bench_lb_maximal"
  "../bench/bench_lb_maximal.pdb"
  "CMakeFiles/bench_lb_maximal.dir/bench_lb_maximal.cpp.o"
  "CMakeFiles/bench_lb_maximal.dir/bench_lb_maximal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_maximal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
