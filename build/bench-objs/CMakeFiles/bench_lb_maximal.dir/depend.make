# Empty dependencies file for bench_lb_maximal.
# This may be replaced when dependencies are built.
