file(REMOVE_RECURSE
  "../bench/bench_lb_approx"
  "../bench/bench_lb_approx.pdb"
  "CMakeFiles/bench_lb_approx.dir/bench_lb_approx.cpp.o"
  "CMakeFiles/bench_lb_approx.dir/bench_lb_approx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
