# Empty compiler generated dependencies file for bench_lb_approx.
# This may be replaced when dependencies are built.
