file(REMOVE_RECURSE
  "../bench/bench_iky_value"
  "../bench/bench_iky_value.pdb"
  "CMakeFiles/bench_iky_value.dir/bench_iky_value.cpp.o"
  "CMakeFiles/bench_iky_value.dir/bench_iky_value.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iky_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
