# Empty dependencies file for bench_iky_value.
# This may be replaced when dependencies are built.
