file(REMOVE_RECURSE
  "CMakeFiles/lcaknap_cli.dir/lcaknap_cli.cpp.o"
  "CMakeFiles/lcaknap_cli.dir/lcaknap_cli.cpp.o.d"
  "lcaknap_cli"
  "lcaknap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcaknap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
