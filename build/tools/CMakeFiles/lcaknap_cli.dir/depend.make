# Empty dependencies file for lcaknap_cli.
# This may be replaced when dependencies are built.
