// Value estimation: the [IKY12] constant-time approximation of OPT that the
// paper's LCA builds on (Section 4).  Estimates the optimal value of
// instances of growing size and shows the sample cost staying flat while the
// estimate tracks the exact optimum within the (1, 6*eps) band.
//
//   ./value_estimation [eps]

#include <cstdlib>
#include <iostream>

#include "iky/value_approx.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/solve.h"
#include "oracle/access.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lcaknap;

  const double eps = argc > 1 ? std::strtod(argv[1], nullptr) : 0.1;
  std::cout << "[IKY12] constant-time OPT-value estimation, eps = " << eps << "\n\n";

  util::Table table({"n", "estimate", "exact/bracket OPT", "samples", "|I~|"});
  for (const std::size_t n : {2'000ULL, 10'000ULL, 50'000ULL, 250'000ULL}) {
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle, n, 5);
    const oracle::MaterializedAccess access(inst);
    iky::ValueApproxConfig config;
    config.eps = eps;
    util::Xoshiro256 rng(6);
    const auto result = iky::approximate_opt_value(access, config, rng);

    std::string truth;
    const auto exact = knapsack::solve_exact(inst, 10'000'000);
    const double scale = static_cast<double>(inst.total_profit());
    if (exact.proven_optimal) {
      truth = util::format_double(
          static_cast<double>(exact.solution.value) / scale);
    } else {
      truth = "[" +
              util::format_double(static_cast<double>(
                                      knapsack::greedy_half(inst).solution.value) /
                                  scale) +
              ", " + util::format_double(knapsack::fractional_opt(inst) / scale) +
              "]";
    }
    table.row()
        .cell(static_cast<unsigned long long>(n))
        .cell(result.estimate)
        .cell(truth)
        .cell(result.samples_used)
        .cell(result.tilde_size);
  }
  table.print(std::cout, "estimate vs optimum (needle family)");
  std::cout << "\nNote the sample column: identical across n — the [IKY12]\n"
               "estimator reads an amount of the instance independent of its size.\n";
  return 0;
}
