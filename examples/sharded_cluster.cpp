// Sharded cluster: the instance is too big for one machine, so it lives
// across shards; the LCA runs against the sharded oracle unchanged (the
// two-level weighted sampling composes to the flat distribution), and the
// per-shard load counters show how the access pattern spreads — heavy-profit
// shards absorb proportionally more sampling traffic.
//
//   ./sharded_cluster [n] [shards]

#include <cstdlib>
#include <iostream>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "knapsack/generators.h"
#include "oracle/sharded.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lcaknap;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const std::size_t shards = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

  const auto instance = knapsack::make_family(knapsack::Family::kNeedle, n, 13);
  const oracle::ShardedAccess cluster(instance, shards);
  std::cout << "instance of " << n << " items across " << shards << " shards\n\n";

  core::LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0x5AAD;
  const core::LcaKp lca(cluster, config);

  util::Xoshiro256 tape(17);
  const auto run = lca.run_pipeline(tape);
  const auto eval = core::evaluate_run(instance, lca, run);

  util::Table summary({"metric", "value"});
  summary.row().cell("feasible").cell(eval.feasible ? "yes" : "no");
  summary.row().cell("value (normalized)").cell(eval.norm_value);
  summary.row().cell("weighted samples").cell(run.samples_used);
  summary.print(std::cout, "LCA run over the sharded oracle");
  std::cout << "\n";

  // Shard load balance: profit mass drives sampling traffic.
  util::Table loads({"shard", "accesses", "share", "profit share"});
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < cluster.shard_count(); ++s) total += cluster.shard_load(s);
  const std::size_t per_shard = n / shards;
  for (std::size_t s = 0; s < cluster.shard_count(); ++s) {
    std::int64_t shard_profit = 0;
    const std::size_t begin = s * per_shard;
    const std::size_t end = s + 1 == shards ? n : begin + per_shard;
    for (std::size_t i = begin; i < end; ++i) shard_profit += instance.item(i).profit;
    loads.row()
        .cell(s)
        .cell(cluster.shard_load(s))
        .cell(static_cast<double>(cluster.shard_load(s)) /
              static_cast<double>(total))
        .cell(static_cast<double>(shard_profit) /
              static_cast<double>(instance.total_profit()));
  }
  loads.print(std::cout, "per-shard access load vs profit mass");
  std::cout << "\nThe access-share column tracks the profit-share column:\n"
               "weighted sampling routes traffic where the profit mass lives.\n";
  return 0;
}
