// Lower-bound demo: plays the paper's two adversary games interactively.
//
//  * Theorems 3.2/3.3 (OR reduction): deciding whether the safety item s_n is
//    in the (approximately) optimal solution of I(x) is as hard as OR_{n-1};
//    watch a budgeted strategy's success rate crawl up linearly in its budget
//    while the full read always wins.
//  * Theorem 3.4 (maximal feasibility): with two planted special items, any
//    budgeted strategy asked about s_i and then s_j gets caught below the
//    4/5 success bar until its budget is Omega(n).
//
//   ./lower_bound_demo [n]

#include <cstdlib>
#include <iostream>

#include "lowerbound/maximal_hard.h"
#include "lowerbound/or_reduction.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lcaknap;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'096;
  constexpr std::size_t kTrials = 3'000;

  std::cout << "Adversary games on n = " << n << " items, " << kTrials
            << " trials per row\n\n";

  {
    util::Table table({"budget", "success", "predicted ceiling", "mean queries"});
    util::Xoshiro256 rng(1);
    const lowerbound::RandomProbeStrategy probe;
    for (const double frac : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
      const auto budget = static_cast<std::uint64_t>(frac * static_cast<double>(n));
      const auto report = lowerbound::play_or_game(n, budget, kTrials, probe, rng);
      table.row()
          .cell(budget)
          .cell(report.success_rate)
          .cell(report.predicted_ceiling)
          .cell(report.mean_queries, 1);
    }
    const lowerbound::FullReadStrategy full;
    const auto full_report = lowerbound::play_or_game(n, n, kTrials, full, rng);
    table.row()
        .cell(static_cast<unsigned long long>(n))
        .cell(full_report.success_rate)
        .cell(1.0)
        .cell(full_report.mean_queries, 1);
    table.print(std::cout,
                "Theorem 3.2/3.3 — OR reduction (is s_n optimal?), random-probe vs full-read");
    std::cout << "\n";
  }

  {
    util::Table table({"budget", "success", "predicted", "note"});
    const lowerbound::SharedScanStrategy shared;
    for (const double frac : {0.0, 1.0 / 11.0, 0.25, 0.5, 1.0, 4.0}) {
      const auto budget = static_cast<std::uint64_t>(frac * static_cast<double>(n));
      const auto report =
          lowerbound::play_maximal_game(n, budget, kTrials, shared, 2);
      std::string note;
      if (frac == 0.0) note = "forced-yes floor (1/2)";
      if (frac > 0.0 && frac < 0.1) note = "paper's n/11 regime: < 4/5";
      if (frac >= 4.0) note = "budget ~ n log n: scan finds everything";
      table.row()
          .cell(budget)
          .cell(report.success_rate)
          .cell(report.predicted_success)
          .cell(note);
    }
    table.print(std::cout,
                "Theorem 3.4 — maximal feasibility game (query s_i then s_j), shared-seed scan");
    std::cout << "\n";

    const lowerbound::FreshScanStrategy fresh;
    const auto budget = static_cast<std::uint64_t>(n) / 4;
    const auto with_seed =
        lowerbound::play_maximal_game(n, budget, kTrials, shared, 3);
    const auto without_seed =
        lowerbound::play_maximal_game(n, budget, kTrials, fresh, 3);
    std::cout << "shared-seed coordination at budget n/4: "
              << util::format_double(with_seed.success_rate) << " vs "
              << util::format_double(without_seed.success_rate)
              << " with fresh randomness\n";
  }
  return 0;
}
