// Quickstart: build a Knapsack instance, stand up LCA-KP behind a
// weighted-sampling oracle, answer point queries, and check the solution the
// answers describe against the exact optimum.
//
//   ./quickstart [n] [eps]

#include <cstdlib>
#include <iostream>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/solve.h"
#include "oracle/access.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lcaknap;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const double eps = argc > 2 ? std::strtod(argv[2], nullptr) : 0.25;

  std::cout << "LCA-KP quickstart: n = " << n << ", eps = " << eps << "\n\n";

  // 1. A workload: the "needle" family (a few heavy items in a large sea).
  const auto instance = knapsack::make_family(knapsack::Family::kNeedle, n, 1);

  // 2. The access model of Section 4: per-index queries plus profit-weighted
  //    sampling, every use counted.
  const oracle::MaterializedAccess access(instance);

  // 3. The LCA.  The seed is the shared random tape r: any number of
  //    replicas constructed with the same seed serve the same solution.
  core::LcaKpConfig config;
  config.eps = eps;
  config.seed = 0xC0DE;
  const core::LcaKp lca(access, config);

  // 4. Point queries.  Each answer() call is one full memoryless run.
  util::Xoshiro256 tape(7);
  std::cout << "point queries (each is an independent run):\n";
  for (const std::size_t i : {std::size_t{0}, n / 2, n - 1}) {
    const bool in = lca.answer(i, tape);
    std::cout << "  is item " << i << " in the solution?  "
              << (in ? "yes" : "no") << "\n";
  }
  std::cout << "oracle cost so far: " << access.sample_count() << " samples, "
            << access.query_count() << " queries (n = " << n << ")\n\n";

  // 5. Verify the implicit solution: materialize C via MAPPING-GREEDY and
  //    compare with the exact optimum.
  util::Xoshiro256 verify_tape(8);
  const auto run = lca.run_pipeline(verify_tape);
  const auto eval = core::evaluate_run(instance, lca, run);
  const auto exact = knapsack::solve_exact(instance);
  const double opt_norm = static_cast<double>(exact.solution.value) /
                          static_cast<double>(instance.total_profit());

  util::Table table({"metric", "value"});
  table.row().cell("feasible").cell(eval.feasible ? "yes" : "no");
  table.row().cell("solution value (normalized)").cell(eval.norm_value);
  table.row().cell("exact OPT (normalized)").cell(opt_norm);
  table.row().cell("ratio").cell(eval.norm_value / opt_norm);
  table.row().cell("(1/2, 6eps) floor").cell(opt_norm / 2.0 - 6.0 * eps);
  table.row().cell("samples per run").cell(run.samples_used);
  table.print(std::cout, "served solution vs exact optimum");
  return 0;
}
