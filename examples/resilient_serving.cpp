// Resilient serving: the full failure-injection stack.  The instance oracle
// is a flaky remote service with realistic latency; the client stack —
// answer verification, retries with decorrelated-jitter backoff and a retry
// budget — restores reliability, and LCA-KP serves on top unchanged.  The
// run reports how many injected failures occurred, how many retries
// absorbed them at what simulated backoff cost, and that the served
// solution is bit-identical to the reliable reference.  A second section
// turns on answer *corruption* and shows the verifier catching every lie.
// At the end it prints what a Prometheus scrape of this process would
// return — the same accounting, read off the metrics registry.
//
//   ./resilient_serving [failure_rate]

#include <cstdlib>
#include <iostream>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "fault/chaos.h"
#include "fault/plan.h"
#include "fault/verifying.h"
#include "knapsack/generators.h"
#include "metrics/exporters.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "oracle/flaky.h"
#include "oracle/instrumented.h"
#include "oracle/latency_model.h"
#include "util/table.h"
#include "util/virtual_clock.h"

int main(int argc, char** argv) {
  using namespace lcaknap;

  const double failure_rate = argc > 1 ? std::strtod(argv[1], nullptr) : 0.2;
  constexpr std::size_t kN = 20'000;

  const auto instance = knapsack::make_family(knapsack::Family::kNeedle, kN, 23);

  // The stack, innermost first: storage -> metrics instrumentation ->
  // simulated RPC latency -> scripted fail-stops -> answer verification ->
  // client-side retries with backoff.  Fail-stops fire *before* the
  // sampling tape is consumed, which is what makes retries transparent.
  const oracle::MaterializedAccess storage(instance);
  const oracle::InstrumentedAccess counted(storage);
  const oracle::LatencyAccess remote(counted, {/*fixed_us=*/80.0, /*exp_mean_us=*/30.0}, 31);
  fault::FaultPhase outage;
  outage.label = "flaky";
  outage.fail_rate = failure_rate;
  const fault::ChaosAccess flaky(remote, fault::FaultPlan({outage}, /*seed=*/37));
  const fault::VerifyingAccess verified(flaky);

  // Backoff sleeps go through the injected clock, so the example runs in
  // microseconds of real time and the backoff bill is exact simulated time.
  util::VirtualClock clock;
  oracle::RetryConfig retry_config;
  retry_config.max_attempts = 64;
  retry_config.base_backoff_us = 50;
  retry_config.max_backoff_us = 5'000;
  retry_config.retry_budget_ratio = 1.0;  // generous: this demo wants no escapes
  const oracle::RetryingAccess client(verified, retry_config, clock);

  std::cout << "oracle stack: storage -> latency -> " << failure_rate * 100
            << "% fail-stops -> verify -> retries(backoff+jitter)\n\n";

  core::LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0x4E5;
  config.quantile_samples = 200'000;
  const core::LcaKp lca(client, config);

  util::Xoshiro256 tape(41);
  const auto run = lca.run_pipeline(tape);
  const auto eval = core::evaluate_run(instance, lca, run);

  // Reference: the same pipeline against the reliable oracle directly.
  const core::LcaKp reference_lca(storage, config);
  util::Xoshiro256 ref_tape(41);
  const auto reference = reference_lca.run_pipeline(ref_tape);
  const auto ref_eval = core::evaluate_run(instance, reference_lca, reference);

  util::Table table({"metric", "with failures", "reliable reference"});
  table.row()
      .cell("feasible")
      .cell(eval.feasible ? "yes" : "no")
      .cell(ref_eval.feasible ? "yes" : "no");
  table.row()
      .cell("value (normalized)")
      .cell(util::format_double(eval.norm_value))
      .cell(util::format_double(ref_eval.norm_value));
  table.row()
      .cell("samples used")
      .cell(std::to_string(run.samples_used))
      .cell(std::to_string(reference.samples_used));
  table.print(std::cout, "served solution, flaky vs reliable oracle");

  std::cout << "\nfailure accounting:\n"
            << "  injected fail-stops: " << flaky.failstops_injected() << "\n"
            << "  retries performed  : " << client.retries_performed() << "\n"
            << "  backoff slept      : "
            << util::format_double(static_cast<double>(client.backoff_slept_us()) / 1e6, 2)
            << " s (simulated)\n"
            << "  simulated RPC time : "
            << util::format_double(remote.simulated_us() / 1e6, 2) << " s\n"
            << "\nFailures fire before the sampling tape is consumed, so retries\n"
            << "are fully transparent: with the same seed and tape the flaky\n"
            << "stack reproduces the reliable run bit-for-bit (columns match\n"
            << "exactly) — it just pays more RPC and backoff time.\n";

  // A lying oracle: 30% of answers come back wrong but well-formed.  Every
  // corruption violates a metadata invariant the verifier checks for free,
  // so each lie becomes a retryable failure and the true item always lands.
  fault::FaultPhase lying;
  lying.label = "corrupting";
  lying.corrupt_rate = 0.3;
  const fault::ChaosAccess corrupting(storage, fault::FaultPlan({lying}, /*seed=*/53));
  const fault::VerifyingAccess guard(corrupting);
  const oracle::RetryingAccess healed(guard, /*max_attempts=*/32);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < 1'000; ++i) {
    wrong += healed.query(i) == instance.item(i) ? 0 : 1;
  }
  std::cout << "\ncorruption drill (30% corrupted answers, 1000 queries):\n"
            << "  corruptions injected: " << corrupting.corruptions_injected() << "\n"
            << "  corruptions detected: " << guard.corruptions_detected() << "\n"
            << "  wrong answers served: " << wrong << "\n";

  std::cout << "\n--- what a Prometheus scrape of this process returns ---\n";
  metrics::write_registry(metrics::global_registry(),
                          metrics::ExportFormat::kPrometheus, std::cout);
  return 0;
}
