// Resilient serving: the full failure-injection stack.  The instance oracle
// is a flaky remote service with realistic latency; a retry layer restores
// reliability; LCA-KP serves on top unchanged.  The run reports how many
// injected failures occurred, how many retries absorbed them, the simulated
// time bill, and that the served solution is unaffected.  At the end it
// prints what a Prometheus scrape of this process would return — the same
// failure/retry accounting, read off the metrics registry.
//
//   ./resilient_serving [failure_rate]

#include <cstdlib>
#include <iostream>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "knapsack/generators.h"
#include "metrics/exporters.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "oracle/flaky.h"
#include "oracle/instrumented.h"
#include "oracle/latency_model.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lcaknap;

  const double failure_rate = argc > 1 ? std::strtod(argv[1], nullptr) : 0.2;
  constexpr std::size_t kN = 20'000;

  const auto instance = knapsack::make_family(knapsack::Family::kNeedle, kN, 23);

  // The stack, innermost first: storage -> metrics instrumentation ->
  // simulated RPC latency -> injected failures -> client-side retries.
  const oracle::MaterializedAccess storage(instance);
  const oracle::InstrumentedAccess counted(storage);
  const oracle::LatencyAccess remote(counted, {/*fixed_us=*/80.0, /*exp_mean_us=*/30.0}, 31);
  const oracle::FlakyAccess flaky(remote, failure_rate, 37);
  const oracle::RetryingAccess client(flaky, /*max_attempts=*/64);

  std::cout << "oracle stack: storage -> latency -> " << failure_rate * 100
            << "% failures -> retries\n\n";

  core::LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0x4E5;
  config.quantile_samples = 200'000;
  const core::LcaKp lca(client, config);

  util::Xoshiro256 tape(41);
  const auto run = lca.run_pipeline(tape);
  const auto eval = core::evaluate_run(instance, lca, run);

  // Reference: the same pipeline against the reliable oracle directly.
  const core::LcaKp reference_lca(storage, config);
  util::Xoshiro256 ref_tape(41);
  const auto reference = reference_lca.run_pipeline(ref_tape);
  const auto ref_eval = core::evaluate_run(instance, reference_lca, reference);

  util::Table table({"metric", "with failures", "reliable reference"});
  table.row()
      .cell("feasible")
      .cell(eval.feasible ? "yes" : "no")
      .cell(ref_eval.feasible ? "yes" : "no");
  table.row()
      .cell("value (normalized)")
      .cell(util::format_double(eval.norm_value))
      .cell(util::format_double(ref_eval.norm_value));
  table.row()
      .cell("samples used")
      .cell(std::to_string(run.samples_used))
      .cell(std::to_string(reference.samples_used));
  table.print(std::cout, "served solution, flaky vs reliable oracle");

  std::cout << "\nfailure accounting:\n"
            << "  injected failures : " << flaky.failures_injected() << "\n"
            << "  retries performed : " << client.retries_performed() << "\n"
            << "  simulated RPC time: "
            << util::format_double(remote.simulated_us() / 1e6, 2) << " s\n"
            << "\nFailures fire before the sampling tape is consumed, so retries\n"
            << "are fully transparent: with the same seed and tape the flaky\n"
            << "stack reproduces the reliable run bit-for-bit (columns match\n"
            << "exactly) — it just pays more RPC time.\n";

  std::cout << "\n--- what a Prometheus scrape of this process returns ---\n";
  metrics::write_registry(metrics::global_registry(),
                          metrics::ExportFormat::kPrometheus, std::cout);
  return 0;
}
