// Distributed serving: the scenario that motivates LCAs at PODC.  A fleet of
// replica threads — sharing nothing but the instance oracle and a 64-bit
// seed — serves membership queries about one common Knapsack solution.  No
// replica ever materializes the solution, no state is kept between queries,
// and a client spot-checks that the fleet answers as a single server would.
//
//   ./distributed_serving [replicas] [queries]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace lcaknap;

  const std::size_t replicas = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t queries = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000;
  constexpr std::size_t kN = 50'000;

  const auto instance = knapsack::make_family(knapsack::Family::kNeedle, kN, 3);
  const oracle::MaterializedAccess access(instance);

  core::LcaKpConfig config;
  config.eps = 0.25;
  config.seed = 0xD15C0;  // the ONLY coordination between replicas
  const core::LcaKp lca(access, config);

  std::cout << "spawning " << replicas << " replicas (threads), instance n = "
            << kN << "\n";

  // Each replica = one independent memoryless run on its own thread with its
  // own fresh sampling tape.
  std::vector<core::LcaKpRun> runs(replicas);
  util::ThreadPool pool(replicas);
  pool.parallel_for(replicas, [&](std::size_t r) {
    util::Xoshiro256 tape(0x7A9E + 31 * r);
    runs[r] = lca.run_pipeline(tape);
  });

  // A client sprays queries round-robin across the fleet and cross-checks
  // every answer against a second, randomly chosen replica.
  util::Xoshiro256 client(99);
  std::size_t agreements = 0;
  std::size_t yes_answers = 0;
  for (std::size_t qi = 0; qi < queries; ++qi) {
    const auto item = static_cast<std::size_t>(client.next_below(kN));
    const auto& primary = runs[qi % replicas];
    const auto& shadow = runs[client.next_below(replicas)];
    const bool a = lca.answer_from(primary, item);
    const bool b = lca.answer_from(shadow, item);
    agreements += (a == b) ? 1 : 0;
    yes_answers += a ? 1 : 0;
  }

  util::Table table({"metric", "value"});
  table.row().cell("replicas").cell(replicas);
  table.row().cell("queries").cell(queries);
  table.row().cell("cross-replica agreement").cell(
      static_cast<double>(agreements) / static_cast<double>(queries));
  table.row().cell("fraction answered yes").cell(
      static_cast<double>(yes_answers) / static_cast<double>(queries));
  double worst_value = 1.0;
  bool all_feasible = true;
  for (const auto& run : runs) {
    const auto eval = core::evaluate_run(instance, lca, run);
    all_feasible = all_feasible && eval.feasible;
    worst_value = std::min(worst_value, eval.norm_value);
  }
  table.row().cell("all replica solutions feasible").cell(all_feasible ? "yes" : "no");
  table.row().cell("worst replica value (normalized)").cell(worst_value);
  table.row().cell("total oracle accesses").cell(access.access_count());
  table.row().cell("oracle accesses if full-read per query").cell(
      static_cast<unsigned long long>(kN) * queries);
  table.print(std::cout, "distributed serving summary");
  return 0;
}
