// Ad-budget allocation: a domain scenario for sublinear membership queries.
//
// A marketplace holds one global campaign budget (the knapsack capacity) and
// millions of candidate ad placements, each with an expected revenue (profit)
// and a cost (weight).  Bid servers must answer "is placement X in today's
// portfolio?" within a latency budget — far too tight to scan the whole
// inventory — and every bid server must answer consistently with the others.
// That is exactly the LCA contract: this example runs LCA-KP over a synthetic
// inventory and serves per-placement decisions, then audits the implied
// portfolio.
//
//   ./ad_allocation [placements]

#include <cstdlib>
#include <iostream>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "knapsack/instance.h"
#include "knapsack/solvers/greedy.h"
#include "oracle/access.h"
#include "oracle/latency_model.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

/// Synthetic inventory: a few premium placements (huge expected revenue),
/// a long tail of efficient niche placements, and a swamp of low-value,
/// high-cost ones.
lcaknap::knapsack::Instance build_inventory(std::size_t n, std::uint64_t seed) {
  using lcaknap::knapsack::Item;
  lcaknap::util::Xoshiro256 rng(seed);
  std::vector<Item> items;
  items.reserve(n);
  const std::size_t premium = 8;
  for (std::size_t i = 0; i < premium; ++i) {
    items.push_back({5'000'000 + rng.next_in(0, 1'000'000), rng.next_in(800, 1'500)});
  }
  for (std::size_t i = premium; i < n; ++i) {
    if (rng.next_double() < 0.7) {
      // Niche placements: modest revenue, proportional cost.
      const std::int64_t revenue = rng.next_in(50, 500);
      items.push_back({revenue, std::max<std::int64_t>(1, revenue / 2 + rng.next_in(0, revenue))});
    } else {
      // Swamp: near-worthless but expensive.
      items.push_back({rng.next_in(1, 10), rng.next_in(5'000, 20'000)});
    }
  }
  std::int64_t total_cost = 0;
  std::int64_t max_cost = 0;
  for (const auto& it : items) {
    total_cost += it.weight;
    max_cost = std::max(max_cost, it.weight);
  }
  const std::int64_t budget = std::max(max_cost, total_cost / 5);
  return {std::move(items), budget};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcaknap;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const auto inventory = build_inventory(n, 2026);
  std::cout << "inventory: " << n << " placements, budget = "
            << inventory.capacity() << " cost units\n";

  // The inventory service is remote: model per-call latency so the report
  // can speak in time, not just counts.
  const oracle::MaterializedAccess store(inventory);
  const oracle::LatencyAccess remote(store, {/*fixed_us=*/120.0, /*exp_mean_us=*/40.0}, 11);

  core::LcaKpConfig config;
  config.eps = 0.25;
  config.seed = 0xAD5;
  config.quantile_samples = 200'000;  // latency-conscious serving profile
  const core::LcaKp bidder(remote, config);

  // One bid server warms up (executes its run); decisions are then O(1).
  util::Xoshiro256 tape(5);
  const auto run = bidder.run_pipeline(tape);
  const double warmup_ms = remote.simulated_us() / 1'000.0;

  // Serve a burst of placement decisions.
  util::Xoshiro256 traffic(17);
  std::size_t accepted = 0;
  constexpr std::size_t kBids = 2'000;
  for (std::size_t b = 0; b < kBids; ++b) {
    const auto placement = static_cast<std::size_t>(traffic.next_below(n));
    accepted += bidder.answer_from(run, placement) ? 1 : 0;
  }

  // Audit the implied portfolio.
  const auto eval = core::evaluate_run(inventory, bidder, run);
  const double greedy_norm =
      static_cast<double>(knapsack::greedy_half(inventory).solution.value) /
      static_cast<double>(inventory.total_profit());

  util::Table table({"metric", "value"});
  table.row().cell("warm-up cost (simulated ms over RPC)").cell(warmup_ms, 2);
  table.row().cell("decisions served").cell(kBids);
  table.row().cell("acceptance rate").cell(
      static_cast<double>(accepted) / static_cast<double>(kBids));
  table.row().cell("portfolio within budget").cell(eval.feasible ? "yes" : "no");
  table.row().cell("portfolio revenue share").cell(eval.norm_value);
  table.row().cell("offline greedy revenue share").cell(greedy_norm);
  table.row().cell("portfolio size").cell(eval.items.size());
  table.print(std::cout, "ad allocation audit");
  return 0;
}
